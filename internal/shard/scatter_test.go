package shard_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hgmatch/internal/core"
	"hgmatch/internal/engine"
	"hgmatch/internal/hgtest"
	"hgmatch/internal/hypergraph"
	"hgmatch/internal/shard"
)

// scatterPlan compiles a random connected query against a random graph,
// skipping seeds that yield no usable query.
func scatterPlan(t *testing.T, seed int64) (*core.Plan, *hypergraph.Hypergraph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
		NumVertices: 25, NumEdges: 60, NumLabels: 2, MaxArity: 4,
	})
	q := hgtest.ConnectedQueryFromWalk(rng, h, 2+int(seed%3))
	if q == nil {
		return nil, nil
	}
	p, err := core.NewPlan(q, h)
	if err != nil {
		t.Fatal(err)
	}
	return p, h
}

// wideWorkload builds a single-table graph whose SCAN has thousands of
// candidates, so a scatter splits it into several units (unitEdges = 1024)
// and the multi-unit merge path is exercised, not just the 1-unit one.
func wideWorkload(t *testing.T) (*core.Plan, *hypergraph.Hypergraph) {
	t.Helper()
	const L, edges = 7, 2500
	b := hypergraph.NewBuilder()
	for i := 0; i < edges+1; i++ {
		b.AddVertex(L)
	}
	for i := 0; i < edges; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	h := b.MustBuild()
	qb := hypergraph.NewBuilder()
	qb.AddEdge(qb.AddVertex(L), qb.AddVertex(L))
	p, err := core.NewPlan(qb.MustBuild(), h)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.InitialCandidates()); got != edges {
		t.Fatalf("wide workload has %d scan candidates, want %d", got, edges)
	}
	return p, h
}

// TestShardScatterMatchesSolo pins the scatter/gather contract: for every
// shard count, a scattered run reports the same embedding count, the same
// deterministic instrumentation counters and the same AGGREGATE groups as
// one solo engine run of the identical plan, and leaks no blocks.
func TestShardScatterMatchesSolo(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	for seed := int64(0); seed < 10; seed++ {
		p, h := scatterPlan(t, seed)
		if p == nil {
			continue
		}
		agg := func(m []hypergraph.EdgeID) string { return fmt.Sprint(m[0] % 3) }
		want := engine.Run(p, engine.Options{Workers: 4, Aggregate: agg})
		for _, n := range []int{1, 2, 4, 8} {
			g, err := shard.New(h, n)
			if err != nil {
				t.Fatal(err)
			}
			res := shard.Scatter(pool, g, p, engine.Options{Workers: 4, Aggregate: agg})
			if res.Embeddings != want.Embeddings {
				t.Fatalf("seed %d n=%d: %d embeddings, solo found %d", seed, n, res.Embeddings, want.Embeddings)
			}
			if res.Counters.Candidates != want.Counters.Candidates ||
				res.Counters.Filtered != want.Counters.Filtered ||
				res.Counters.Valid != want.Counters.Valid {
				t.Fatalf("seed %d n=%d: counters %+v, solo %+v", seed, n, res.Counters, want.Counters)
			}
			if fmt.Sprint(res.Groups) != fmt.Sprint(want.Groups) {
				t.Fatalf("seed %d n=%d: groups %v, solo %v", seed, n, res.Groups, want.Groups)
			}
			if res.LeakedBlocks != 0 {
				t.Fatalf("seed %d n=%d: %d leaked blocks", seed, n, res.LeakedBlocks)
			}
		}
	}
}

// TestShardScatterStreamDeterministic pins the gather order: the merged
// embedding stream is byte-identical across every shard count (per-unit
// sorted rows in ascending unit order), which is what lets the server
// promise byte-identical NDJSON bodies however the deployment is sharded.
func TestShardScatterStreamDeterministic(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	p, h := wideWorkload(t)
	collect := func(n int, limit uint64) []string {
		g, err := shard.New(h, n)
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		shard.Scatter(pool, g, p, engine.Options{
			Workers: 4,
			Limit:   limit,
			OnEmbedding: func(m []hypergraph.EdgeID) {
				rows = append(rows, fmt.Sprint(m))
			},
		})
		return rows
	}
	for _, limit := range []uint64{0, 1, 1500} {
		want := collect(1, limit)
		wantLen := 2500
		if limit > 0 {
			wantLen = int(limit)
		}
		if len(want) != wantLen {
			t.Fatalf("limit=%d: n=1 streamed %d rows, want %d", limit, len(want), wantLen)
		}
		for _, n := range []int{2, 4, 8} {
			got := collect(n, limit)
			if len(got) != len(want) {
				t.Fatalf("limit=%d n=%d: %d rows, n=1 streamed %d", limit, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("limit=%d n=%d: stream diverges at row %d: %s vs %s",
						limit, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardScatterLimitSubset checks a limited scatter returns a true
// subset of the full result set and recomputes Groups from the kept rows.
func TestShardScatterLimitSubset(t *testing.T) {
	pool := engine.NewPool(2)
	defer pool.Close()
	p, h := wideWorkload(t)
	full := make(map[string]bool)
	engine.Run(p, engine.Options{Workers: 1, OnEmbedding: func(m []hypergraph.EdgeID) {
		full[fmt.Sprint(m)] = true
	}})
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 100
	agg := func(m []hypergraph.EdgeID) string { return fmt.Sprint(m[0] % 2) }
	var kept []string
	res := shard.Scatter(pool, g, p, engine.Options{
		Workers:   2,
		Limit:     limit,
		Aggregate: agg,
		OnEmbedding: func(m []hypergraph.EdgeID) {
			kept = append(kept, fmt.Sprint(m))
		},
	})
	if res.Embeddings != limit || len(kept) != limit {
		t.Fatalf("limited scatter kept %d rows (res %d), want %d", len(kept), res.Embeddings, limit)
	}
	for _, row := range kept {
		if !full[row] {
			t.Fatalf("limited scatter emitted %s, not in the full result set", row)
		}
	}
	var groupSum uint64
	for _, c := range res.Groups {
		groupSum += c
	}
	if groupSum != limit {
		t.Fatalf("groups sum to %d, want the %d kept rows", groupSum, limit)
	}
}

// TestShardScatterEmptyShortCircuit: a plan with no SCAN candidates (or an
// explicitly empty scan) returns a zero Result without touching the pool.
func TestShardScatterEmptyShortCircuit(t *testing.T) {
	pool := engine.NewPool(2)
	defer pool.Close()
	h := hgtest.Fig1Data()
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	qb := hypergraph.NewBuilder()
	qb.AddEdge(qb.AddVertex(99), qb.AddVertex(99)) // label absent from Fig. 1
	p, err := core.NewPlan(qb.MustBuild(), h)
	if err != nil {
		t.Fatal(err)
	}
	res := shard.Scatter(pool, g, p, engine.Options{Workers: 2})
	if res.Embeddings != 0 || res.TimedOut || res.LeakedBlocks != 0 {
		t.Fatalf("empty plan scatter: %+v", res)
	}
	p2, err := core.NewPlan(hgtest.Fig1Query(), h)
	if err != nil {
		t.Fatal(err)
	}
	res = shard.Scatter(pool, g, p2, engine.Options{Workers: 2, Scan: []hypergraph.EdgeID{}})
	if res.Embeddings != 0 {
		t.Fatalf("explicit empty scan found %d embeddings", res.Embeddings)
	}
}

// TestShardScatterTimeoutBoundsRun pins the review fix on deadline
// propagation: Options.Timeout is converted once into a shared context
// deadline that must reach every unit sub-run AND be checked between
// units, so an expired deadline stops the scatter instead of letting the
// fan-out run unbounded (the server's MaxTimeout contract). An already-
// expired 1ns deadline must abort both the parallel and the Limit paths
// before they enumerate the full 2500-row workload.
func TestShardScatterTimeoutBoundsRun(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	p, h := wideWorkload(t)
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := shard.Scatter(pool, g, p, engine.Options{Workers: 4, Timeout: time.Nanosecond})
	if !res.TimedOut {
		t.Fatal("expired deadline not reported as TimedOut")
	}
	if res.Embeddings >= 2500 {
		t.Fatalf("expired deadline still enumerated the full workload (%d embeddings)", res.Embeddings)
	}
	if res.LeakedBlocks != 0 {
		t.Fatalf("%d leaked blocks on the timeout path", res.LeakedBlocks)
	}
	res = shard.Scatter(pool, g, p, engine.Options{Workers: 4, Timeout: time.Nanosecond, Limit: 2000})
	if !res.TimedOut {
		t.Fatal("expired deadline not reported as TimedOut on the Limit path")
	}
	if res.Embeddings >= 2000 {
		t.Fatalf("expired deadline still filled the limit (%d embeddings)", res.Embeddings)
	}
	// The pool must come back clean: a full-deadline run right after.
	res = shard.Scatter(pool, g, p, engine.Options{Workers: 4, Timeout: time.Minute})
	if res.TimedOut || res.Embeddings != 2500 {
		t.Fatalf("post-timeout scatter: %d embeddings, timed out %v", res.Embeddings, res.TimedOut)
	}
}

// TestShardScatterConcurrentCancel races several scattered runs against
// cancellation at randomized points mid-scatter (including mid-merge) and
// checks the invariant the engine promises on every abort path: zero
// leaked embedding blocks, and the shared pool stays fully serviceable.
func TestShardScatterConcurrentCancel(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	p, h := wideWorkload(t)
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	delays := make([]time.Duration, 24)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(2000)) * time.Microsecond
	}
	var wg sync.WaitGroup
	for _, d := range delays {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(d, cancel)
			defer timer.Stop()
			defer cancel()
			res := shard.Scatter(pool, g, p, engine.Options{
				Workers: 2,
				Context: ctx,
				OnEmbedding: func(m []hypergraph.EdgeID) {
					_ = m // buffered gather path: cancellation can land mid-merge
				},
			})
			if res.LeakedBlocks != 0 {
				t.Errorf("cancel after %v: %d leaked blocks", d, res.LeakedBlocks)
			}
		}(d)
	}
	wg.Wait()
	// The pool must still serve an undisturbed run to completion.
	res := shard.Scatter(pool, g, p, engine.Options{Workers: 4})
	if res.Embeddings != 2500 || res.LeakedBlocks != 0 {
		t.Fatalf("post-cancel scatter: %d embeddings, %d leaked", res.Embeddings, res.LeakedBlocks)
	}
}

// TestShardIngestWhileScatterMatching runs scattered matches concurrently
// with routed ingest through the same sharded graph. Every match is
// compiled against an immutable snapshot, so each scattered result must
// equal a solo run of its own plan no matter how the writer interleaves.
func TestShardIngestWhileScatterMatching(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(5))
	h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
		NumVertices: 25, NumEdges: 60, NumLabels: 2, MaxArity: 4,
	})
	q := hgtest.ConnectedQueryFromWalk(rng, h, 2)
	if q == nil {
		t.Skip("no query")
	}
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		wrng := rand.New(rand.NewSource(6))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vs := []uint32{wrng.Uint32() % 25, wrng.Uint32() % 25}
			if _, _, err := g.Insert(vs...); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			g.Publish()
			if i%8 == 7 {
				if _, err := g.Compact(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 20; i++ {
				snap := g.Live().Snapshot()
				p, err := core.NewPlan(q, snap)
				if err != nil {
					t.Errorf("plan: %v", err)
					return
				}
				res := shard.Scatter(pool, g, p, engine.Options{Workers: 2})
				want := engine.Run(p, engine.Options{Workers: 1})
				if res.Embeddings != want.Embeddings {
					t.Errorf("iter %d: scattered %d embeddings, solo %d", i, res.Embeddings, want.Embeddings)
					return
				}
				if res.LeakedBlocks != 0 {
					t.Errorf("iter %d: %d leaked blocks", i, res.LeakedBlocks)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
