package shard_test

import (
	"errors"
	"math/rand"
	"os"
	"testing"

	"hgmatch/internal/engine"
	"hgmatch/internal/hgtest"
	"hgmatch/internal/shard"
)

// chaosScale mirrors the engine battery's gate: the dedicated CI chaos
// job sets HGMATCH_CHAOS=1 for the full sweep, the default pass runs a
// fast smoke slice of the same assertions.
func chaosScale(full, smoke int) int {
	if os.Getenv("HGMATCH_CHAOS") != "" {
		return full
	}
	return smoke
}

// TestChaosScatterPanics sweeps randomized panic injection across a
// scattered run's fault points — inside shard sub-runs ("task", "expand",
// "sink") and at the gather merge ("gather"). A fired fault must surface
// as ErrRequestPoisoned on the scatter result with zero leaked blocks;
// the shared pool must serve the next scatter at full fidelity every
// time, which is the "one poisoned request detaches alone" contract.
func TestChaosScatterPanics(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	p, h := wideWorkload(t)
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	counter := &hgtest.FaultCounter{}
	base := shard.Scatter(pool, g, p, engine.Options{Workers: 4, FaultHook: counter.Hook})
	if base.Err != nil || base.Embeddings != 2500 {
		t.Fatalf("counting scatter: err=%v n=%d", base.Err, base.Embeddings)
	}
	if counter.Count("gather") == 0 {
		t.Fatal("scatter crossed no gather points")
	}
	rng := rand.New(rand.NewSource(31))
	iters := chaosScale(80, 12)
	fired := 0
	for i := 0; i < iters; i++ {
		inj := &hgtest.PanicInjector{Target: 1 + rng.Int63n(counter.Total()*3/4)}
		opts := engine.Options{Workers: 1 + rng.Intn(4), FaultHook: inj.Hook}
		if i%3 == 2 {
			// Every third round takes the Limit gather path instead.
			opts.Limit = 1 + uint64(rng.Intn(2500))
		}
		res := shard.Scatter(pool, g, p, opts)
		if res.LeakedBlocks != 0 {
			t.Fatalf("iter %d (target %d): leaked %d blocks", i, inj.Target, res.LeakedBlocks)
		}
		if inj.Fired() {
			fired++
			if !errors.Is(res.Err, engine.ErrRequestPoisoned) {
				t.Fatalf("iter %d (target %d): fired but err=%v", i, inj.Target, res.Err)
			}
		} else if res.Err != nil {
			t.Fatalf("iter %d: no fault fired but err=%v", i, res.Err)
		}
		// The pool must stay serviceable beside/after every fault.
		if clean := shard.Scatter(pool, g, p, engine.Options{Workers: 2, Limit: 64}); clean.Err != nil || clean.Embeddings != 64 {
			t.Fatalf("iter %d: pool degraded after fault: err=%v n=%d", i, clean.Err, clean.Embeddings)
		}
	}
	if fired < iters/2 {
		t.Errorf("only %d/%d injections fired", fired, iters)
	}
	// Full-fidelity check once the storm is over.
	final := shard.Scatter(pool, g, p, engine.Options{Workers: 4})
	if final.Err != nil || final.Embeddings != 2500 || final.LeakedBlocks != 0 {
		t.Fatalf("post-chaos scatter: err=%v n=%d leaked=%d", final.Err, final.Embeddings, final.LeakedBlocks)
	}
	t.Logf("scatter battery: %d/%d faults fired", fired, iters)
}

// TestChaosGatherPanic pins the nastiest injection site: a panic thrown
// while the gather holds its merge lock. The deferred recover inside the
// flush must convert it to a poisoned result instead of wedging the
// gather mutex — a deadlock here would hang every later scatter.
func TestChaosGatherPanic(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	p, h := wideWorkload(t)
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	iters := chaosScale(20, 5)
	for i := 0; i < iters; i++ {
		inj := &hgtest.PanicInjector{Point: "gather", Target: int64(i%3) + 1}
		res := shard.Scatter(pool, g, p, engine.Options{Workers: 4, FaultHook: inj.Hook})
		if !inj.Fired() {
			t.Fatalf("iter %d: gather injection never fired", i)
		}
		var pe *engine.PoisonedError
		if !errors.As(res.Err, &pe) || pe.Point != "gather" {
			t.Fatalf("iter %d: err=%v, want gather poison", i, res.Err)
		}
		if res.LeakedBlocks != 0 {
			t.Fatalf("iter %d: leaked %d blocks", i, res.LeakedBlocks)
		}
		// No wedged mutex: the very next scatter completes in full.
		clean := shard.Scatter(pool, g, p, engine.Options{Workers: 4})
		if clean.Err != nil || clean.Embeddings != 2500 {
			t.Fatalf("iter %d: gather wedged: err=%v n=%d", i, clean.Err, clean.Embeddings)
		}
	}
}

// TestChaosScatterBudget sweeps per-request budgets over a scattered run,
// which charges both the sub-runs' live blocks and the gather window's
// buffered rows. Aborts must carry ErrBudgetExceeded, leak nothing, and
// leave the pool serviceable.
func TestChaosScatterBudget(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	p, h := wideWorkload(t)
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	blockBytes := int64(engine.TaskBlockBytes(p))
	rng := rand.New(rand.NewSource(32))
	iters := chaosScale(40, 8)
	aborted := 0
	for i := 0; i < iters; i++ {
		budget := 1 + rng.Int63n(blockBytes*12)
		opts := engine.Options{Workers: 1 + rng.Intn(4), MaxMemory: budget}
		if i%2 == 1 {
			opts.Limit = 1 + uint64(rng.Intn(2500))
		}
		res := shard.Scatter(pool, g, p, opts)
		if res.LeakedBlocks != 0 {
			t.Fatalf("iter %d (budget %d): leaked %d blocks", i, budget, res.LeakedBlocks)
		}
		if res.Err != nil {
			if !errors.Is(res.Err, engine.ErrBudgetExceeded) {
				t.Fatalf("iter %d (budget %d): unexpected err %v", i, budget, res.Err)
			}
			aborted++
		}
	}
	if aborted == 0 || aborted == iters {
		t.Errorf("sweep never straddled the bind point: %d/%d aborted", aborted, iters)
	}
	final := shard.Scatter(pool, g, p, engine.Options{Workers: 4})
	if final.Err != nil || final.Embeddings != 2500 {
		t.Fatalf("post-budget scatter: err=%v n=%d", final.Err, final.Embeddings)
	}
	t.Logf("scatter budget battery: %d/%d aborted", aborted, iters)
}
