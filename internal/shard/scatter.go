package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"hgmatch/internal/core"
	"hgmatch/internal/engine"
	"hgmatch/internal/hypergraph"
)

// unitEdges is the scatter granularity: how many SCAN candidates one
// sub-run seeds. Unit boundaries depend only on the scan order, never on
// the shard count, so the merged stream — per-unit sorted rows
// concatenated in ascending unit order — is byte-identical for every N
// (the golden battery's cross-shard-count pin). 1024 seeds amortise a
// Pool.Submit round-trip over thousands of expansions while still
// yielding enough units to overlap on the pool.
const unitEdges = 1024

// emptyScan is the explicit empty seed set submitted for shards that own
// no SCAN candidate. A plan's whole start partition shares one signature
// table, so exactly one shard owns every seed; the other N-1 sub-runs
// must short-circuit without touching the engine — submitting them
// explicitly (rather than skipping) keeps that property exercised on
// every scattered request, not just in tests.
var emptyScan = []hypergraph.EdgeID{}

// Scatter fans one compiled plan out across g's shards on the shared pool
// and gathers one merged Result, semantically equivalent to a solo
// pool.Submit(p, opts) against the mirror:
//
//   - The owning shard's SCAN candidates are split into unitEdges-sized
//     units, each submitted as its own sub-run (Options.Scan); every
//     embedding is rooted at exactly one seed, so the union is exact.
//     Non-owner shards get explicit empty sub-runs that short-circuit.
//   - Counters, per-worker stats and LeakedBlocks are summed across
//     sub-runs; PeakTasks/PeakTaskBytes take the max (units run
//     back-to-back, not stacked); TimedOut ORs.
//   - With callbacks or a Limit the per-unit embeddings are buffered,
//     sorted within the unit, and concatenated in unit order — a
//     deterministic total order — before callbacks run serially
//     post-merge (OnEmbeddingWorker sees worker index 0). Under a Limit,
//     units run sequentially with early stop once the kept set reaches n;
//     the kept set is the canonical first n, identical for every shard
//     count, and Groups are recomputed from it. Without either, sub-runs
//     stream nothing and Groups merge by key sum.
//
// opts.Timeout is converted to a context deadline shared by all sub-runs
// (a per-sub-run timeout would restart the clock on every unit).
func Scatter(pool *engine.Pool, g *Graph, p *core.Plan, opts engine.Options) engine.Result {
	start := time.Now()
	scan := opts.Scan
	if scan == nil && !p.Empty {
		scan = p.InitialCandidates()
	}
	var res engine.Result
	if p.Empty || len(scan) == 0 {
		res.Elapsed = time.Since(start)
		return res
	}

	ctx := opts.Context
	if opts.Timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	// Every seed comes from the plan's start partition — one signature
	// table — so one shard owns the entire scan.
	owner := g.OwnerOf(p.Data, scan[0])
	for s := 0; s < g.n; s++ {
		if s == owner {
			continue
		}
		sub := opts
		sub.Scan = emptyScan
		sub.Timeout, sub.Context = 0, ctx
		sub.OnEmbedding, sub.OnEmbeddingWorker = nil, nil
		mergeResult(&res, pool.Submit(p, sub))
	}

	units := make([][]hypergraph.EdgeID, 0, (len(scan)+unitEdges-1)/unitEdges)
	for lo := 0; lo < len(scan); lo += unitEdges {
		hi := lo + unitEdges
		if hi > len(scan) {
			hi = len(scan)
		}
		units = append(units, scan[lo:hi])
	}

	buffered := opts.Limit > 0 || opts.OnEmbedding != nil || opts.OnEmbeddingWorker != nil
	var kept [][]hypergraph.EdgeID

	if opts.Limit > 0 {
		// Sequential with early stop: each unit is fully enumerated, so
		// the accumulated prefix is the canonical first-n regardless of
		// how many units (or shards) the run was split into.
		for _, u := range units {
			if ctxDone(ctx) {
				res.TimedOut = true
				break
			}
			sub, rows := runUnit(pool, p, &opts, u, true)
			mergeResult(&res, sub)
			kept = append(kept, rows...)
			if uint64(len(kept)) >= opts.Limit {
				break
			}
		}
		if uint64(len(kept)) > opts.Limit {
			kept = kept[:opts.Limit]
		}
	} else {
		// Bounded fan-out: at most Workers() units in flight, so the
		// pool's active-request list stays O(workers) however large the
		// scan is.
		type unitOut struct {
			res  engine.Result
			rows [][]hypergraph.EdgeID
		}
		outs := make([]unitOut, len(units))
		next := make(chan int, len(units))
		for i := range units {
			next <- i
		}
		close(next)
		par := pool.Workers()
		if par > len(units) {
			par = len(units)
		}
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					r, rows := runUnit(pool, p, &opts, units[i], buffered)
					outs[i] = unitOut{res: r, rows: rows}
				}
			}()
		}
		wg.Wait()
		for _, o := range outs {
			mergeResult(&res, o.res)
			res.Embeddings += o.res.Embeddings
			mergeGroups(&res, o.res.Groups)
			if buffered {
				kept = append(kept, o.rows...)
			}
		}
	}

	if buffered {
		res.Embeddings = uint64(len(kept))
		if opts.Limit > 0 && opts.Aggregate != nil {
			groups := make(map[string]uint64, 16)
			for _, m := range kept {
				groups[opts.Aggregate(m)]++
			}
			res.Groups = groups
		}
		// Gather: callbacks replay the merged stream serially in its
		// deterministic order. Worker index 0 — the gather phase is one
		// logical consumer, whatever parallelism produced the rows.
		for _, m := range kept {
			if opts.OnEmbeddingWorker != nil {
				opts.OnEmbeddingWorker(0, m)
			}
			if opts.OnEmbedding != nil {
				opts.OnEmbedding(m)
			}
		}
	}
	res.TimedOut = res.TimedOut || ctxDone(ctx)
	res.Elapsed = time.Since(start)
	return res
}

// runUnit submits one unit's sub-run. With buffering it swaps the caller's
// callbacks for a per-worker collector and returns the unit's rows sorted
// lexicographically; sub-run Limit and (under a coordinator Limit)
// Aggregate are stripped, since truncation and group recount happen on the
// merged stream.
func runUnit(pool *engine.Pool, p *core.Plan, opts *engine.Options, unit []hypergraph.EdgeID, buffered bool) (engine.Result, [][]hypergraph.EdgeID) {
	sub := *opts
	sub.Scan = unit
	sub.Timeout = 0 // already converted to sub.Context by Scatter
	if !buffered {
		return pool.Submit(p, sub), nil
	}
	sub.Limit = 0
	sub.OnEmbedding = nil
	if opts.Limit > 0 {
		sub.Aggregate = nil
	}
	per := make([][][]hypergraph.EdgeID, pool.Workers())
	sub.OnEmbeddingWorker = func(w int, m []hypergraph.EdgeID) {
		per[w] = append(per[w], append([]hypergraph.EdgeID(nil), m...))
	}
	r := pool.Submit(p, sub)
	var rows [][]hypergraph.EdgeID
	for _, ws := range per {
		rows = append(rows, ws...)
	}
	sortRows(rows)
	return r, rows
}

// mergeResult folds one sub-run's stats into the gathered result.
// Embeddings and Groups are intentionally NOT merged here — their
// semantics differ between the buffered and streaming paths, so Scatter
// owns them.
func mergeResult(dst *engine.Result, sub engine.Result) {
	dst.Counters.Add(sub.Counters)
	for len(dst.Workers) < len(sub.Workers) {
		dst.Workers = append(dst.Workers, engine.WorkerStats{})
	}
	for i, ws := range sub.Workers {
		dst.Workers[i].Tasks += ws.Tasks
		dst.Workers[i].Spawned += ws.Spawned
		dst.Workers[i].Steals += ws.Steals
		dst.Workers[i].Stolen += ws.Stolen
		dst.Workers[i].BusyTime += ws.BusyTime
		dst.Workers[i].SinkCount += ws.SinkCount
	}
	if sub.PeakTasks > dst.PeakTasks {
		dst.PeakTasks = sub.PeakTasks
	}
	if sub.PeakTaskBytes > dst.PeakTaskBytes {
		dst.PeakTaskBytes = sub.PeakTaskBytes
	}
	dst.TimedOut = dst.TimedOut || sub.TimedOut
	dst.LeakedBlocks += sub.LeakedBlocks
}

// mergeGroups key-sums a sub-run's AGGREGATE output (streaming path only).
func mergeGroups(dst *engine.Result, groups map[string]uint64) {
	if len(groups) == 0 {
		return
	}
	if dst.Groups == nil {
		dst.Groups = make(map[string]uint64, len(groups))
	}
	for k, v := range groups {
		dst.Groups[k] += v
	}
}

// sortRows orders embeddings lexicographically by edge ID tuple.
func sortRows(rows [][]hypergraph.EdgeID) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func ctxDone(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
