package shard

import (
	"context"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"hgmatch/internal/core"
	"hgmatch/internal/engine"
	"hgmatch/internal/hypergraph"
)

// unitEdges is the scatter granularity: how many SCAN candidates one
// sub-run seeds. Unit boundaries depend only on the scan order, never on
// the shard count, so the merged stream — per-unit sorted rows
// concatenated in ascending unit order — is byte-identical for every N
// (the golden battery's cross-shard-count pin). 1024 seeds amortise a
// Pool.Submit round-trip over thousands of expansions while still
// yielding enough units to overlap on the pool.
const unitEdges = 1024

// gatherWindow bounds, in units per concurrent lane, how far the parallel
// gather may run ahead of the in-order flush cursor. A slow unit 0 can
// therefore pin at most window×lanes completed units in memory — not the
// whole run — so a sharded /match whose result set streams fine unsharded
// cannot accumulate it wholesale under -shards.
const gatherWindow = 2

// emptyScan is the explicit empty seed set submitted for shards that own
// no SCAN candidate. A plan's whole start partition shares one signature
// table, so exactly one shard owns every seed; the other N-1 sub-runs
// must short-circuit without touching the engine — submitting them
// explicitly (rather than skipping) keeps that property exercised on
// every scattered request, not just in tests.
var emptyScan = []hypergraph.EdgeID{}

// Scatter fans one compiled plan out across g's shards on the shared pool
// and gathers one merged Result, semantically equivalent to a solo
// pool.Submit(p, opts) against the mirror:
//
//   - The owning shard's SCAN candidates are split into unitEdges-sized
//     units, each submitted as its own sub-run (Options.Scan); every
//     embedding is rooted at exactly one seed, so the union is exact.
//     Non-owner shards get explicit empty sub-runs that short-circuit.
//   - Counters, per-worker stats and LeakedBlocks are summed across
//     sub-runs; TimedOut ORs. PeakTasks/PeakTaskBytes merge by max on the
//     sequential (Limit) path, where units run back-to-back; the parallel
//     path runs up to Workers() units at once, so there the merged peak
//     is the sum of the largest per-unit peaks across that fan-out — a
//     conservative upper bound on the truly concurrent high-water mark.
//   - With callbacks or a Limit the per-unit embeddings are buffered,
//     sorted within the unit, and concatenated in unit order — a
//     deterministic total order — with callbacks replayed serially in
//     that order (OnEmbeddingWorker sees worker index 0). Under a Limit,
//     units run sequentially with early stop once the kept set reaches n;
//     the kept set is the canonical first n, identical for every shard
//     count, and Groups are recomputed from it. Without a Limit,
//     completed units flush to the callbacks as soon as every earlier
//     unit has flushed, and the gather holds at most a bounded window of
//     completed units (gatherWindow) — it never buffers the whole run.
//     Without callbacks or Limit, sub-runs stream nothing and Groups
//     merge by key sum.
//
// opts.Timeout is converted once into a context deadline stored back into
// opts.Context, shared by all sub-runs (a per-sub-run timeout would
// restart the clock on every unit); between units both paths stop
// scheduling new sub-runs once the deadline passes.
func Scatter(pool *engine.Pool, g *Graph, p *core.Plan, opts engine.Options) engine.Result {
	start := time.Now()
	scan := opts.Scan
	if scan == nil && !p.Empty {
		scan = p.InitialCandidates()
	}
	var res engine.Result
	if p.Empty || len(scan) == 0 {
		res.Elapsed = time.Since(start)
		return res
	}

	if opts.Timeout > 0 {
		ctx := opts.Context
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel := context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
		// Store the deadline back into opts: every sub-run below copies
		// opts, so this single assignment is what carries the bound into
		// runUnit and the empty-shard sub-runs.
		opts.Context, opts.Timeout = ctx, 0
	}
	ctx := opts.Context

	// Every seed comes from the plan's start partition — one signature
	// table — so one shard owns the entire scan.
	owner := g.OwnerOf(p.Data, scan[0])
	for s := 0; s < g.n; s++ {
		if s == owner {
			continue
		}
		sub := opts
		sub.Scan = emptyScan
		sub.OnEmbedding, sub.OnEmbeddingWorker = nil, nil
		mergeResult(&res, pool.Submit(p, sub))
	}

	units := make([][]hypergraph.EdgeID, 0, (len(scan)+unitEdges-1)/unitEdges)
	for lo := 0; lo < len(scan); lo += unitEdges {
		hi := lo + unitEdges
		if hi > len(scan) {
			hi = len(scan)
		}
		units = append(units, scan[lo:hi])
	}

	emit := func(m []hypergraph.EdgeID) {
		if opts.OnEmbeddingWorker != nil {
			opts.OnEmbeddingWorker(0, m)
		}
		if opts.OnEmbedding != nil {
			opts.OnEmbedding(m)
		}
	}

	if opts.Limit > 0 {
		// Sequential with early stop: each unit is fully enumerated, so
		// the accumulated prefix is the canonical first-n regardless of
		// how many units (or shards) the run was split into. The buffer
		// is bounded by Limit plus one unit's overshoot, and additionally
		// by the request's memory budget.
		var kept [][]hypergraph.EdgeID
		rowBytes := gatherRowBytes(p)
		for _, u := range units {
			if ctxDone(ctx) {
				res.TimedOut = true
				break
			}
			sub, rows := runUnit(pool, p, &opts, u, true)
			mergeResult(&res, sub)
			if sub.Err != nil {
				// A faulted unit's rows are not the canonical prefix;
				// keep what earlier units produced and stop scattering.
				break
			}
			kept = append(kept, rows...)
			if opts.MaxMemory > 0 && int64(len(kept))*rowBytes > opts.MaxMemory {
				if res.Err == nil {
					res.Err = engine.ErrBudgetExceeded
				}
				break
			}
			if uint64(len(kept)) >= opts.Limit {
				break
			}
		}
		if uint64(len(kept)) > opts.Limit {
			kept = kept[:opts.Limit]
		}
		res.Embeddings = uint64(len(kept))
		if opts.Aggregate != nil {
			groups := make(map[string]uint64, 16)
			for _, m := range kept {
				groups[opts.Aggregate(m)]++
			}
			res.Groups = groups
		}
		// Gather: callbacks replay the merged stream serially in its
		// deterministic order. Worker index 0 — the gather phase is one
		// logical consumer, whatever parallelism produced the rows.
		for _, m := range kept {
			emit(m)
		}
	} else {
		res.TimedOut = res.TimedOut || scatterParallel(pool, p, &opts, units, &res, emit)
	}
	res.TimedOut = res.TimedOut || ctxDone(ctx)
	res.Elapsed = time.Since(start)
	return res
}

// scatterParallel runs the no-Limit path: up to pool.Workers() units in
// flight, flushed strictly in ascending unit order as they complete. The
// flush merges each unit's stats, streams its (already sorted) rows to the
// caller's callbacks, and drops them — so peak gather memory is the
// bounded run-ahead window, not the result set. Returns whether the run
// was cut short by ctx. Invariants the flush relies on:
//
//   - units are claimed in ascending order, so the started set is always
//     a contiguous prefix and the in-order cursor never stalls on a gap;
//   - a claimed unit always runs to completion (cancellation is checked
//     before claiming, and mid-unit cancellation is the engine's job), so
//     every started unit's stats are eventually flushed even on abort.
//
// Fault containment: a sub-run that returns Result.Err (poisoned,
// over-budget, pool closed) halts the claim loop — in-flight units finish
// and flush their stats, no new units start, and the first Err is the
// scatter's Err. The gather window's buffered rows are charged against
// opts.MaxMemory, and the flush — which runs the caller's emit callbacks
// under the gather lock — recovers a panicking callback instead of
// deadlocking the other lanes on that lock.
func scatterParallel(pool *engine.Pool, p *core.Plan, opts *engine.Options, units [][]hypergraph.EdgeID, res *engine.Result, emit func([]hypergraph.EdgeID)) (ctxStopped bool) {
	buffered := opts.OnEmbedding != nil || opts.OnEmbeddingWorker != nil
	ctx := opts.Context
	par := pool.Workers()
	if par > len(units) {
		par = len(units)
	}
	window := gatherWindow * par

	type unitOut struct {
		res  engine.Result
		rows [][]hypergraph.EdgeID
		done bool
	}
	outs := make([]unitOut, len(units))
	// Per-unit peaks of everything that flushed, for the stacked-peak
	// bound below.
	peakTasks := make([]int64, 0, len(units))
	peakBytes := make([]int64, 0, len(units))

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	next, flushed := 0, 0
	halt := false // stop claiming: ctx cancelled, sub-run Err, or budget
	var bufBytes int64
	rowBytes := gatherRowBytes(p)

	// flush records one completed unit and advances the in-order cursor,
	// streaming each flushable unit's rows. Callbacks may panic; the deferred
	// recover converts that into a poisoned scatter (halting claims) while
	// the deferred unlock keeps the gather lock releasable.
	flush := func(i int, r engine.Result, rows [][]hypergraph.EdgeID) {
		mu.Lock()
		defer mu.Unlock()
		defer func() {
			if rec := recover(); rec != nil {
				if res.Err == nil {
					res.Err = &engine.PoisonedError{Value: rec, Stack: debug.Stack(), Point: "gather"}
				}
				halt = true
				cond.Broadcast()
			}
		}()
		outs[i] = unitOut{res: r, rows: rows, done: true}
		if buffered {
			if bufBytes += int64(len(rows)) * rowBytes; opts.MaxMemory > 0 && bufBytes > opts.MaxMemory {
				if res.Err == nil {
					res.Err = engine.ErrBudgetExceeded
				}
				halt = true
			}
		}
		for flushed < len(units) && outs[flushed].done {
			o := &outs[flushed]
			mergeResult(res, o.res)
			mergeGroups(res, o.res.Groups)
			peakTasks = append(peakTasks, o.res.PeakTasks)
			peakBytes = append(peakBytes, o.res.PeakTaskBytes)
			if hook := opts.FaultHook; hook != nil {
				hook("gather")
			}
			if buffered {
				bufBytes -= int64(len(o.rows)) * rowBytes
				res.Embeddings += uint64(len(o.rows))
				for _, m := range o.rows {
					emit(m)
				}
			} else {
				res.Embeddings += o.res.Embeddings
			}
			*o = unitOut{}
			flushed++
		}
		if res.Err != nil {
			halt = true
		}
		cond.Broadcast()
	}

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for next < len(units) && next-flushed >= window && !halt {
					cond.Wait()
				}
				if next >= len(units) || halt {
					mu.Unlock()
					return
				}
				if ctxDone(ctx) {
					halt, ctxStopped = true, true
					cond.Broadcast()
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				r, rows := runUnit(pool, p, opts, units[i], buffered)

				flush(i, r, rows)
			}
		}()
	}
	wg.Wait()

	// mergeResult max-merged the peaks, which is right for sequential
	// sub-runs but under-reports here: up to par units were in flight at
	// once, their per-unit peaks stacking. Sum the par largest per-unit
	// peaks instead — a conservative upper bound on the concurrent
	// high-water mark (never below the max the empty-shard sub-runs
	// already folded in).
	if s := topSum(peakTasks, par); s > res.PeakTasks {
		res.PeakTasks = s
	}
	if s := topSum(peakBytes, par); s > res.PeakTaskBytes {
		res.PeakTaskBytes = s
	}
	return ctxStopped
}

// gatherRowBytes is the accounted size of one buffered gather row: a slice
// header plus |E(q)| edge IDs — the unit the gather window's memory budget
// is charged in.
func gatherRowBytes(p *core.Plan) int64 {
	return 24 + 4*int64(p.NumSteps())
}

// topSum sums the k largest values.
func topSum(vals []int64, k int) int64 {
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	if k > len(vals) {
		k = len(vals)
	}
	var s int64
	for _, v := range vals[:k] {
		s += v
	}
	return s
}

// runUnit submits one unit's sub-run. With buffering it swaps the caller's
// callbacks for a per-worker collector and returns the unit's rows sorted
// lexicographically; sub-run Limit and (under a coordinator Limit)
// Aggregate are stripped, since truncation and group recount happen on the
// merged stream.
func runUnit(pool *engine.Pool, p *core.Plan, opts *engine.Options, unit []hypergraph.EdgeID, buffered bool) (engine.Result, [][]hypergraph.EdgeID) {
	sub := *opts
	sub.Scan = unit
	if !buffered {
		return pool.Submit(p, sub), nil
	}
	sub.Limit = 0
	sub.OnEmbedding = nil
	if opts.Limit > 0 {
		sub.Aggregate = nil
	}
	per := make([][][]hypergraph.EdgeID, pool.Workers())
	sub.OnEmbeddingWorker = func(w int, m []hypergraph.EdgeID) {
		per[w] = append(per[w], append([]hypergraph.EdgeID(nil), m...))
	}
	r := pool.Submit(p, sub)
	var rows [][]hypergraph.EdgeID
	for _, ws := range per {
		rows = append(rows, ws...)
	}
	sortRows(rows)
	return r, rows
}

// mergeResult folds one sub-run's stats into the gathered result.
// Embeddings and Groups are intentionally NOT merged here — their
// semantics differ between the buffered and streaming paths, so the
// callers own them. Peaks merge by max, which the parallel path corrects
// for stacking after the fact (see scatterParallel). Err merges
// first-wins: the first faulted sub-run classifies the scatter.
func mergeResult(dst *engine.Result, sub engine.Result) {
	if dst.Err == nil {
		dst.Err = sub.Err
	}
	dst.Counters.Add(sub.Counters)
	for len(dst.Workers) < len(sub.Workers) {
		dst.Workers = append(dst.Workers, engine.WorkerStats{})
	}
	for i, ws := range sub.Workers {
		dst.Workers[i].Tasks += ws.Tasks
		dst.Workers[i].Spawned += ws.Spawned
		dst.Workers[i].Steals += ws.Steals
		dst.Workers[i].Stolen += ws.Stolen
		dst.Workers[i].BusyTime += ws.BusyTime
		dst.Workers[i].SinkCount += ws.SinkCount
	}
	if sub.PeakTasks > dst.PeakTasks {
		dst.PeakTasks = sub.PeakTasks
	}
	if sub.PeakTaskBytes > dst.PeakTaskBytes {
		dst.PeakTaskBytes = sub.PeakTaskBytes
	}
	dst.TimedOut = dst.TimedOut || sub.TimedOut
	dst.LeakedBlocks += sub.LeakedBlocks
}

// mergeGroups key-sums a sub-run's AGGREGATE output (streaming path only).
func mergeGroups(dst *engine.Result, groups map[string]uint64) {
	if len(groups) == 0 {
		return
	}
	if dst.Groups == nil {
		dst.Groups = make(map[string]uint64, len(groups))
	}
	for k, v := range groups {
		dst.Groups[k] += v
	}
}

// sortRows orders embeddings lexicographically by edge ID tuple.
func sortRows(rows [][]hypergraph.EdgeID) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func ctxDone(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
