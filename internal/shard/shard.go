// Package shard implements cluster mode, stage 1 (intra-process): a data
// hypergraph partitioned across N shards by signature-partition hash, plus
// the scatter/gather coordinator that fans one compiled plan out to
// per-shard sub-runs on the shared engine.Pool and merges their embedding
// streams deterministically (scatter.go).
//
// The hypergraph's CSR tables are already independent per-signature units,
// so placement is table-granular: every hyperedge table (signature, edge
// label) hashes to exactly one owning shard, each shard holds a
// self-contained hypergraph.Hypergraph (full vertex table, owned tables
// only) behind its own DeltaBuffer, and ingest routes each delta record to
// its owner's buffer. Stage 1 keeps everything in one address space: the
// coordinator additionally maintains a mirror DeltaBuffer holding the
// union graph through the exact same code path a solo deployment uses, so
// hyperedge IDs, tombstone holes and compaction renumbering are identical
// to an unsharded server's — the property the golden equivalence battery
// pins. Stage 2 (cross-process) replaces the mirror's shared-memory
// expansion with remote partition fetches over the wire types in
// internal/hgio/wire.go; the shard placement, ingest routing and merge
// semantics built here carry over unchanged.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"hgmatch/internal/hypergraph"
)

// fnv64Offset/fnv64Prime are the FNV-1a 64-bit parameters. Placement must
// be a pure function of the table key — stable across processes, enumeration
// orders and restarts — so stage 2 coordinators and shard servers agree on
// ownership without coordination; FNV-1a over the canonical signature bytes
// gives that with no dependencies.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// Owner returns the shard in [0, shards) owning the hyperedge table keyed
// by (sig, edgeLabel). sig must be canonical (non-decreasing), which every
// Signature produced by this module is.
func Owner(sig hypergraph.Signature, edgeLabel hypergraph.Label, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(fnv64Offset)
	mix := func(x uint32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(x >> (8 * i)))
			h *= fnv64Prime
		}
	}
	for _, l := range sig {
		mix(uint32(l))
	}
	mix(uint32(edgeLabel))
	return int(h % uint64(shards))
}

// Stat reports one shard's storage state for GET /stats.
type Stat struct {
	Shard        int // shard index
	Edges        int // live hyperedges resident on the shard
	Partitions   int // hyperedge tables owned by the shard
	PendingEdges int // uncompacted delta inserts routed to the shard
	DeadEdges    int // tombstones awaiting compaction on the shard
}

// Graph is a data hypergraph partitioned across N shards by
// signature-table hash. Each shard is a self-contained DeltaBuffer over
// its own Hypergraph (full vertex table, owned hyperedge tables); the
// mirror is the union DeltaBuffer matching runs against in stage 1 (its
// snapshots are bit-identical to a solo deployment's, see the package
// comment). All writers route through Graph methods, which keep the owner
// shard and the mirror in lockstep under one mutex; readers take mirror
// snapshots lock-free via Live().Snapshot().
type Graph struct {
	n      int
	mirror *hypergraph.DeltaBuffer
	shards []*hypergraph.DeltaBuffer

	// mu serialises writers across the mirror and the shard buffers (each
	// buffer has its own internal lock, but a routed op must land in both
	// or neither side of a concurrent snapshot boundary) and guards labels.
	mu sync.Mutex
	// labels mirrors the full vertex-label table including not-yet-published
	// AddVertex appends: ingest routing needs each record's signature before
	// the mirror publishes, and snapshots only expose published labels.
	labels []hypergraph.Label
}

// New partitions h across n shards. The mirror compacts a delta-carrying h
// first (exactly as NewDeltaBuffer would), so shards are always built from
// a clean base.
func New(h *hypergraph.Hypergraph, n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: %d shards (want >= 1)", n)
	}
	mirror, err := hypergraph.NewDeltaBuffer(h)
	if err != nil {
		return nil, err
	}
	base := mirror.Base()
	builders := make([]*hypergraph.Builder, n)
	for s := range builders {
		b := hypergraph.NewBuilder()
		// Full vertex table on every shard: vertex IDs are global, so a
		// shard's tables reference them without translation and an
		// AddVertex broadcast keeps every ID space aligned.
		for _, l := range base.Labels() {
			b.AddVertex(l)
		}
		builders[s] = b
	}
	for i := 0; i < base.NumPartitions(); i++ {
		p := base.Partition(i)
		b := builders[Owner(p.Sig, p.EdgeLabel, n)]
		for _, e := range p.Edges {
			if p.EdgeLabel == hypergraph.NoEdgeLabel {
				b.AddEdge(base.Edge(e)...)
			} else {
				b.AddLabelledEdge(p.EdgeLabel, base.Edge(e)...)
			}
		}
	}
	g := &Graph{
		n:      n,
		mirror: mirror,
		shards: make([]*hypergraph.DeltaBuffer, n),
		labels: append([]hypergraph.Label(nil), base.Labels()...),
	}
	for s, b := range builders {
		sh, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d/%d: %w", s, n, err)
		}
		if g.shards[s], err = hypergraph.NewDeltaBuffer(sh); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// NumShards returns the shard count N.
func (g *Graph) NumShards() int { return g.n }

// Live returns the mirror DeltaBuffer — the union view whose snapshots
// matching (and versioning) runs against. Callers must not write through
// it directly; writes go through Graph methods so they reach the owning
// shard too.
func (g *Graph) Live() *hypergraph.DeltaBuffer { return g.mirror }

// ShardBuffer returns shard s's own DeltaBuffer (tests and stats walk it;
// stage 2 serves it remotely).
func (g *Graph) ShardBuffer(s int) *hypergraph.DeltaBuffer { return g.shards[s] }

// OwnerOf returns the shard owning hyperedge e of snapshot h (a mirror
// snapshot; the table key is derived from it, not from shard-local state).
func (g *Graph) OwnerOf(h *hypergraph.Hypergraph, e hypergraph.EdgeID) int {
	return Owner(h.SignatureOf(e), h.EdgeLabel(e), g.n)
}

// ownerOfVertices computes the owning shard for a record over the given
// vertex set, using the routing label table (which includes unpublished
// AddVertex appends). Callers hold g.mu and have validated the IDs.
func (g *Graph) ownerOfVertices(el hypergraph.Label, vertices []uint32) int {
	vs := append([]uint32(nil), vertices...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	j := 0
	for i, v := range vs { // dedup: signatures are over vertex *sets*
		if i == 0 || v != vs[j-1] {
			vs[j] = v
			j++
		}
	}
	return Owner(hypergraph.SignatureOf(vs[:j], g.labels), el, g.n)
}

// Insert routes an unlabelled hyperedge insert (see InsertLabelled).
func (g *Graph) Insert(vertices ...uint32) (hypergraph.EdgeID, bool, error) {
	return g.InsertLabelled(hypergraph.NoEdgeLabel, vertices...)
}

// InsertLabelled applies the insert to the mirror and to the owning
// shard's DeltaBuffer. The returned ID and added flag are the mirror's —
// identical to a solo deployment's answer; shard-local IDs are an
// implementation detail of shard residency.
func (g *Graph) InsertLabelled(el hypergraph.Label, vertices ...uint32) (hypergraph.EdgeID, bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, added, err := g.mirror.InsertLabelled(el, vertices...)
	if err != nil {
		return e, added, err
	}
	owner := g.ownerOfVertices(el, vertices)
	if _, _, serr := g.shards[owner].InsertLabelled(el, vertices...); serr != nil {
		return e, added, fmt.Errorf("shard %d diverged on insert: %w", owner, serr)
	}
	return e, added, nil
}

// Delete routes an unlabelled hyperedge delete (see DeleteLabelled).
func (g *Graph) Delete(vertices ...uint32) (bool, error) {
	return g.DeleteLabelled(hypergraph.NoEdgeLabel, vertices...)
}

// DeleteLabelled applies the delete to the mirror and to the owning shard.
func (g *Graph) DeleteLabelled(el hypergraph.Label, vertices ...uint32) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ok, err := g.mirror.DeleteLabelled(el, vertices...)
	if err != nil {
		return ok, err
	}
	owner := g.ownerOfVertices(el, vertices)
	if _, serr := g.shards[owner].DeleteLabelled(el, vertices...); serr != nil {
		return ok, fmt.Errorf("shard %d diverged on delete: %w", owner, serr)
	}
	return ok, nil
}

// AddVertex broadcasts a vertex append to the mirror and every shard,
// keeping the global vertex ID space aligned across all of them. Returns
// the mirror's (global) vertex ID.
func (g *Graph) AddVertex(l hypergraph.Label) hypergraph.VertexID {
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.mirror.AddVertex(l)
	for _, sh := range g.shards {
		sh.AddVertex(l)
	}
	g.labels = append(g.labels, l)
	return v
}

// Base returns the mirror's most recently compacted base graph.
func (g *Graph) Base() *hypergraph.Hypergraph { return g.mirror.Base() }

// NumVertices returns the mirror's vertex count, pending appends included.
func (g *Graph) NumVertices() int { return g.mirror.NumVertices() }

// Publish publishes pending writes on every shard and then the mirror,
// returning the mirror's new snapshot (the writer-side ack surface, like
// DeltaBuffer.Publish).
func (g *Graph) Publish() *hypergraph.Hypergraph {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, sh := range g.shards {
		sh.Publish()
	}
	return g.mirror.Publish()
}

// PendingEdges returns the mirror's uncompacted insert count.
func (g *Graph) PendingEdges() int { return g.mirror.PendingEdges() }

// TombstonedEdges returns the mirror's deletions awaiting compaction.
func (g *Graph) TombstonedEdges() int { return g.mirror.TombstonedEdges() }

// CompactCounted folds every shard's delta and then the mirror's,
// returning the mirror's fresh base and fold counts (the solo-identical
// numbers a CompactSummary reports).
func (g *Graph) CompactCounted() (nh *hypergraph.Hypergraph, folded, dropped int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for s, sh := range g.shards {
		if _, err := sh.Compact(); err != nil {
			return nil, 0, 0, fmt.Errorf("shard: compacting shard %d: %w", s, err)
		}
	}
	return g.mirror.CompactCounted()
}

// Compact is CompactCounted without the counts.
func (g *Graph) Compact() (*hypergraph.Hypergraph, error) {
	nh, _, _, err := g.CompactCounted()
	return nh, err
}

// Stats reports each shard's resident volume (GET /stats rows).
func (g *Graph) Stats() []Stat {
	out := make([]Stat, g.n)
	for s, sh := range g.shards {
		h := sh.Snapshot()
		out[s] = Stat{
			Shard:        s,
			Edges:        h.NumLiveEdges(),
			Partitions:   h.NumPartitions(),
			PendingEdges: sh.PendingEdges(),
			DeadEdges:    sh.TombstonedEdges(),
		}
	}
	return out
}
