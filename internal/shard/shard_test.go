package shard_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hgmatch/internal/hgtest"
	"hgmatch/internal/hypergraph"
	"hgmatch/internal/shard"
)

// edgeMultiset canonicalises a snapshot's live hyperedges as sorted
// "label|vertices" strings — the shard-placement invariants are all stated
// over this multiset (vertex IDs are global, so no translation is needed).
func edgeMultiset(h *hypergraph.Hypergraph) []string {
	var out []string
	for i := 0; i < h.NumPartitions(); i++ {
		p := h.Partition(i)
		for _, e := range p.Edges {
			if h.IsDeadEdge(e) {
				continue
			}
			out = append(out, fmt.Sprint(p.EdgeLabel, "|", h.Edge(e)))
		}
	}
	sort.Strings(out)
	return out
}

func randomGraph(t *testing.T, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
		NumVertices: 30, NumEdges: 80, NumLabels: 3, MaxArity: 4,
	})
}

// TestShardOwnerPlacement pins the placement function's contract with
// randomized inputs: Owner is deterministic, always lands in [0, shards),
// and every signature maps to exactly one shard (two calls never disagree,
// whatever canonical byte-equal signature slice they are given).
func TestShardOwnerPlacement(t *testing.T) {
	f := func(raw []uint32, edgeLabel uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		sig := make(hypergraph.Signature, len(raw))
		for i, l := range raw {
			sig[i] = hypergraph.Label(l)
		}
		sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] }) // canonical
		s := shard.Owner(sig, hypergraph.Label(edgeLabel), n)
		if s < 0 || s >= n {
			return false
		}
		// Exactly one shard: a fresh copy of the same key owns the same shard.
		cp := append(hypergraph.Signature(nil), sig...)
		return shard.Owner(cp, hypergraph.Label(edgeLabel), n) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestShardPlacementCoversEveryPartition checks, on real graphs, that the
// partition loop in New places each hyperedge table on exactly one shard:
// the shard-local partition counts sum to the base's, and no table appears
// on two shards.
func TestShardPlacementCoversEveryPartition(t *testing.T) {
	h := randomGraph(t, 1)
	for _, n := range []int{1, 2, 4, 8} {
		g, err := shard.New(h, n)
		if err != nil {
			t.Fatal(err)
		}
		base := g.Base()
		seen := make(map[string]int) // table key -> owning shard
		total := 0
		for s := 0; s < n; s++ {
			sh := g.ShardBuffer(s).Snapshot()
			for i := 0; i < sh.NumPartitions(); i++ {
				p := sh.Partition(i)
				key := fmt.Sprint(p.EdgeLabel, "|", p.Sig)
				if prev, dup := seen[key]; dup {
					t.Fatalf("n=%d: table %s on shards %d and %d", n, key, prev, s)
				}
				seen[key] = s
				total++
			}
		}
		if total != base.NumPartitions() {
			t.Fatalf("n=%d: %d shard tables, base has %d", n, total, base.NumPartitions())
		}
	}
}

// TestShardReshardPreservesEdgeMultiset re-partitions one graph across
// several shard counts; whatever N, the union of the shard buffers must be
// exactly the base edge multiset (nothing lost, nothing duplicated), so a
// re-shard N -> M is always safe to rebuild from the mirror.
func TestShardReshardPreservesEdgeMultiset(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		h := randomGraph(t, seed)
		want := edgeMultiset(h)
		for _, n := range []int{1, 2, 3, 4, 8} {
			g, err := shard.New(h, n)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for s := 0; s < n; s++ {
				got = append(got, edgeMultiset(g.ShardBuffer(s).Snapshot())...)
			}
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("seed %d n=%d: %d edges across shards, want %d", seed, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d n=%d: edge multiset diverges at %d: %s vs %s",
						seed, n, i, got[i], want[i])
				}
			}
			// The mirror is untouched by sharding.
			if mirror := edgeMultiset(g.Live().Snapshot()); len(mirror) != len(want) {
				t.Fatalf("seed %d n=%d: mirror has %d edges, want %d", seed, n, len(mirror), len(want))
			}
		}
	}
}

// TestShardIngestRoutingEquivalence drives the same randomized op sequence
// through a sharded Graph and a plain DeltaBuffer: returned IDs, dedup
// flags, tombstone counts and the post-compaction graph must be identical
// (the mirror IS the solo write path), and the shard union must track the
// mirror at every publish.
func TestShardIngestRoutingEquivalence(t *testing.T) {
	h := randomGraph(t, 7)
	g, err := shard.New(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := hypergraph.NewDeltaBuffer(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	nv := uint32(h.NumVertices())
	randVerts := func() []uint32 {
		k := 2 + rng.Intn(3)
		vs := make([]uint32, k)
		for i := range vs {
			vs[i] = rng.Uint32() % nv
		}
		return vs
	}
	var inserted [][]uint32
	for op := 0; op < 200; op++ {
		switch {
		case op%17 == 16: // occasional new vertex
			l := hypergraph.Label(rng.Intn(3))
			gv := g.AddVertex(l)
			sv := solo.AddVertex(l)
			if gv != sv {
				t.Fatalf("op %d: AddVertex IDs diverge: %d vs %d", op, gv, sv)
			}
			nv++
		case op%5 == 4 && len(inserted) > 0: // delete something we inserted
			vs := inserted[rng.Intn(len(inserted))]
			gok, gerr := g.Delete(vs...)
			sok, serr := solo.Delete(vs...)
			if gok != sok || (gerr == nil) != (serr == nil) {
				t.Fatalf("op %d: delete(%v) diverges: (%v,%v) vs (%v,%v)", op, vs, gok, gerr, sok, serr)
			}
		default:
			vs := randVerts()
			ge, gadd, gerr := g.Insert(vs...)
			se, sadd, serr := solo.Insert(vs...)
			if ge != se || gadd != sadd || (gerr == nil) != (serr == nil) {
				t.Fatalf("op %d: insert(%v) diverges: (%d,%v,%v) vs (%d,%v,%v)",
					op, vs, ge, gadd, gerr, se, sadd, serr)
			}
			if gadd {
				inserted = append(inserted, vs)
			}
		}
		if op%31 == 30 {
			g.Publish()
			solo.Publish()
			if g.PendingEdges() != solo.PendingEdges() || g.TombstonedEdges() != solo.TombstonedEdges() {
				t.Fatalf("op %d: delta state diverges: (%d,%d) vs (%d,%d)", op,
					g.PendingEdges(), g.TombstonedEdges(), solo.PendingEdges(), solo.TombstonedEdges())
			}
		}
	}
	g.Publish()
	solo.Publish()
	// Shard union == mirror == solo, live edges only.
	mirror := edgeMultiset(g.Live().Snapshot())
	soloSet := edgeMultiset(solo.Snapshot())
	var union []string
	for s := 0; s < g.NumShards(); s++ {
		union = append(union, edgeMultiset(g.ShardBuffer(s).Snapshot())...)
	}
	sort.Strings(union)
	for name, got := range map[string][]string{"mirror": mirror, "shard union": union} {
		if fmt.Sprint(got) != fmt.Sprint(soloSet) {
			t.Fatalf("%s diverges from solo buffer:\n%v\nwant:\n%v", name, got, soloSet)
		}
	}
	// Compaction folds identically.
	gh, gf, gd, gerr := g.CompactCounted()
	sh2, sf, sd, serr := solo.CompactCounted()
	if (gerr == nil) != (serr == nil) || gf != sf || gd != sd {
		t.Fatalf("compact diverges: (%d,%d,%v) vs (%d,%d,%v)", gf, gd, gerr, sf, sd, serr)
	}
	if fmt.Sprint(edgeMultiset(gh)) != fmt.Sprint(edgeMultiset(sh2)) {
		t.Fatal("compacted bases diverge")
	}
}

// TestShardEmptyAndBadCounts pins the constructor's edges: n < 1 is
// rejected, n = 1 degenerates to one shard owning everything.
func TestShardEmptyAndBadCounts(t *testing.T) {
	h := hgtest.Fig1Data()
	if _, err := shard.New(h, 0); err == nil {
		t.Fatal("New(h, 0) succeeded")
	}
	g, err := shard.New(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := edgeMultiset(g.ShardBuffer(0).Snapshot()); len(got) != h.NumLiveEdges() {
		t.Fatalf("single shard holds %d edges, want %d", len(got), h.NumLiveEdges())
	}
}

// TestShardStats checks the per-shard stats rows add up to the whole graph.
func TestShardStats(t *testing.T) {
	h := randomGraph(t, 3)
	g, err := shard.New(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Insert(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	g.Publish()
	var edges, parts, pending int
	for _, s := range g.Stats() {
		edges += s.Edges
		parts += s.Partitions
		pending += s.PendingEdges
	}
	want := g.Live().Snapshot().NumLiveEdges()
	if edges != want {
		t.Fatalf("shard edges sum %d, mirror has %d", edges, want)
	}
	if pending != g.PendingEdges() {
		t.Fatalf("shard pending sum %d, mirror reports %d", pending, g.PendingEdges())
	}
	if parts < g.Base().NumPartitions() {
		t.Fatalf("shard partitions sum %d < base %d", parts, g.Base().NumPartitions())
	}
}
