// Package baseline implements the paper's comparison systems: the generic
// match-by-vertex backtracking framework extended to hypergraphs
// (Algorithm 1 with the Theorem III.2 subhypergraph matching constraint),
// the IHS candidate filter of [30], and the matching-order strategies that
// characterise the extended state-of-the-art algorithms CFL-H, DAF-H and
// CECI-H (paper §III-B, §VII-A). The RapidMatch baseline runs on bipartite
// conversions and lives in internal/bipartite.
//
// These baselines intentionally follow the match-by-vertex design the paper
// argues against: hyperedges are used only as verification conditions, so
// hyperedge verification is delayed and the search space is the product of
// per-vertex candidate sets. The orders-of-magnitude gap against HGMatch in
// the Fig. 8 experiments comes from exactly this framework difference.
package baseline

import (
	"encoding/binary"
	"sort"
	"time"

	"hgmatch/internal/hypergraph"
)

// Algorithm selects the matching-order strategy emulating one of the
// extended state-of-the-art algorithms.
type Algorithm int

const (
	// CFLH orders vertices core-forest-leaf (CFL [9] extended).
	CFLH Algorithm = iota
	// DAFH orders vertices along a candidate-size-weighted DAG (DAF [31]
	// extended).
	DAFH
	// CECIH orders vertices in BFS-tree order from a minimum-candidate
	// root (CECI [8] extended).
	CECIH
)

func (a Algorithm) String() string {
	switch a {
	case CFLH:
		return "CFL-H"
	case DAFH:
		return "DAF-H"
	case CECIH:
		return "CECI-H"
	default:
		return "baseline"
	}
}

// Options configures a baseline run.
type Options struct {
	Algorithm Algorithm
	// Timeout aborts the enumeration (0 = none); timed-out runs report
	// TimedOut and lower-bound counts, mirroring the paper's 1-hour cap.
	Timeout time.Duration
	// Limit stops after this many vertex mappings (0 = unlimited).
	Limit uint64
}

// Result reports a baseline run.
type Result struct {
	// Embeddings counts distinct subhypergraph embeddings (distinct data
	// hyperedge tuples), the unit HGMatch counts, so results are directly
	// comparable.
	Embeddings uint64
	// Mappings counts enumerated injective vertex mappings; automorphic
	// mappings onto the same subhypergraph each count once here.
	Mappings uint64
	// Recursions counts Enumerate invocations (search-tree nodes).
	Recursions uint64
	// CandidateSizes is Σ_u |C(u)| after IHS filtering.
	CandidateSizes int
	Elapsed        time.Duration
	TimedOut       bool
}

// Match runs the extended match-by-vertex framework.
func Match(q, h *hypergraph.Hypergraph, opts Options) (res Result) {
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()

	n := q.NumVertices()
	if n == 0 || q.NumEdges() == 0 {
		return res
	}

	// Line 1 of Algorithm 1: candidate vertex sets via the IHS filter.
	cands := BuildCandidates(q, h)
	for _, c := range cands {
		res.CandidateSizes += len(c)
		if len(c) == 0 {
			return res
		}
	}

	// Line 2: matching order per emulated algorithm.
	order := VertexOrder(q, cands, opts.Algorithm)

	// Precompute, for each order position i, the query hyperedges whose
	// vertex sets become fully mapped exactly when order[i] is assigned
	// (the Theorem III.2 constraint checks).
	pos := make([]int, n)
	for i, u := range order {
		pos[u] = i
	}
	completedAt := make([][]hypergraph.EdgeID, n)
	for e := 0; e < q.NumEdges(); e++ {
		last := 0
		for _, u := range q.Edge(uint32(e)) {
			if pos[u] > last {
				last = pos[u]
			}
		}
		completedAt[last] = append(completedAt[last], hypergraph.EdgeID(e))
	}

	st := &btState{
		q: q, h: h,
		order:       order,
		cands:       cands,
		completedAt: completedAt,
		f:           make([]uint32, n),
		used:        make(map[uint32]bool, n),
		limit:       opts.Limit,
		tuples:      make(map[string]struct{}),
		imgBuf:      make([]uint32, 0, q.MaxArity()),
	}
	if opts.Timeout > 0 {
		st.deadline = start.Add(opts.Timeout)
		st.hasDL = true
	}
	st.enumerate(0)

	res.Mappings = st.mappings
	res.Recursions = st.recursions
	res.Embeddings = uint64(len(st.tuples))
	res.TimedOut = st.stopped && st.hasDL
	return res
}

type btState struct {
	q, h        *hypergraph.Hypergraph
	order       []uint32
	cands       [][]uint32
	completedAt [][]hypergraph.EdgeID
	f           []uint32 // query vertex -> data vertex
	used        map[uint32]bool

	mappings   uint64
	recursions uint64
	limit      uint64
	deadline   time.Time
	hasDL      bool
	stopped    bool

	tuples map[string]struct{} // distinct data-edge tuples
	imgBuf []uint32
}

// enumerate is the recursive Enumerate procedure of Algorithm 1; the
// validity test at line 10 is the Theorem III.2 constraint: every query
// hyperedge completed by this assignment must have its image present in
// E(H). This is precisely the "delayed hyperedge verification" the paper
// identifies: an edge of arity k is verified only after all k member
// vertices are mapped.
func (st *btState) enumerate(i int) {
	st.recursions++
	if st.stopped {
		return
	}
	if st.hasDL && st.recursions&0xFFF == 0 && !time.Now().Before(st.deadline) {
		st.stopped = true
		return
	}
	if i == len(st.order) {
		st.record()
		return
	}
	u := st.order[i]
candidates:
	for _, v := range st.cands[u] {
		if st.used[v] {
			continue
		}
		st.f[u] = v
		// Theorem III.2 check for hyperedges completed at this position.
		for _, qe := range st.completedAt[i] {
			if !st.imageEdgeExists(qe) {
				continue candidates
			}
		}
		st.used[v] = true
		st.enumerate(i + 1)
		delete(st.used, v)
		if st.stopped {
			return
		}
	}
}

// imageEdgeExists checks {f(u') : u' ∈ eq} ∈ E(H).
func (st *btState) imageEdgeExists(qe hypergraph.EdgeID) bool {
	st.imgBuf = st.imgBuf[:0]
	for _, u := range st.q.Edge(qe) {
		st.imgBuf = append(st.imgBuf, st.f[u])
	}
	sort.Slice(st.imgBuf, func(a, b int) bool { return st.imgBuf[a] < st.imgBuf[b] })
	_, ok := st.h.FindEdge(st.imgBuf)
	return ok
}

// record registers a complete vertex mapping: it derives the data-edge
// tuple (the subhypergraph embedding in the paper's Definition III.3
// sense) and deduplicates automorphic mappings.
func (st *btState) record() {
	st.mappings++
	if st.limit > 0 && st.mappings >= st.limit {
		st.stopped = true
	}
	key := make([]byte, 0, 4*st.q.NumEdges())
	var tmp [4]byte
	for e := 0; e < st.q.NumEdges(); e++ {
		st.imgBuf = st.imgBuf[:0]
		for _, u := range st.q.Edge(uint32(e)) {
			st.imgBuf = append(st.imgBuf, st.f[u])
		}
		sort.Slice(st.imgBuf, func(a, b int) bool { return st.imgBuf[a] < st.imgBuf[b] })
		id, ok := st.h.FindEdge(st.imgBuf)
		if !ok {
			return // cannot happen: every edge was verified
		}
		binary.BigEndian.PutUint32(tmp[:], id)
		key = append(key, tmp[:]...)
	}
	st.tuples[string(key)] = struct{}{}
}
