package baseline

import (
	"testing"
)

// pathAdj builds the primal adjacency of a path v0-v1-...-v(n-1).
func pathAdj(n int) [][]uint32 {
	adj := make([][]uint32, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], uint32(i-1))
		}
		if i < n-1 {
			adj[i] = append(adj[i], uint32(i+1))
		}
	}
	return adj
}

// cycleAdj builds the primal adjacency of a cycle.
func cycleAdj(n int) [][]uint32 {
	adj := make([][]uint32, n)
	for i := 0; i < n; i++ {
		adj[i] = []uint32{uint32((i + n - 1) % n), uint32((i + 1) % n)}
	}
	return adj
}

func TestCoreForestLeafPath(t *testing.T) {
	// A path has no 2-core: endpoints are leaves, interior is forest.
	tier := coreForestLeaf(5, pathAdj(5))
	if tier[0] != 2 || tier[4] != 2 {
		t.Errorf("path endpoints not leaves: %v", tier)
	}
	for i := 1; i <= 3; i++ {
		if tier[i] != 1 {
			t.Errorf("path interior %d tier %d, want forest(1): %v", i, tier[i], tier)
		}
	}
}

func TestCoreForestLeafCycle(t *testing.T) {
	// A cycle is entirely 2-core.
	tier := coreForestLeaf(6, cycleAdj(6))
	for i, x := range tier {
		if x != 0 {
			t.Errorf("cycle vertex %d tier %d, want core(0)", i, x)
		}
	}
}

func TestCoreForestLeafLollipop(t *testing.T) {
	// Triangle 0-1-2 with a tail 2-3-4: triangle is core, 3 is forest,
	// 4 is leaf.
	adj := [][]uint32{
		{1, 2},
		{0, 2},
		{0, 1, 3},
		{2, 4},
		{3},
	}
	tier := coreForestLeaf(5, adj)
	for i := 0; i <= 2; i++ {
		if tier[i] != 0 {
			t.Errorf("triangle vertex %d tier %d, want core", i, tier[i])
		}
	}
	if tier[3] != 1 {
		t.Errorf("tail vertex 3 tier %d, want forest", tier[3])
	}
	if tier[4] != 2 {
		t.Errorf("tail end tier %d, want leaf", tier[4])
	}
}

// fakeQuery adapts raw adjacency to the VertexOrder interface.
type fakeQuery struct {
	adj [][]uint32
}

func (f fakeQuery) NumVertices() int                   { return len(f.adj) }
func (f fakeQuery) AdjacentVertices(u uint32) []uint32 { return f.adj[u] }
func (f fakeQuery) Degree(u uint32) int                { return len(f.adj[u]) }

func TestCFLOrderVisitsCoreFirst(t *testing.T) {
	// Lollipop again; equal candidate sizes everywhere, so the order must
	// be driven purely by tiers: all core vertices before forest before
	// leaf.
	adj := [][]uint32{
		{1, 2},
		{0, 2},
		{0, 1, 3},
		{2, 4},
		{3},
	}
	cands := make([][]uint32, 5)
	for i := range cands {
		cands[i] = []uint32{0, 1, 2} // equal sizes
	}
	order := VertexOrder(fakeQuery{adj}, cands, CFLH)
	pos := make(map[uint32]int)
	for i, u := range order {
		pos[u] = i
	}
	for _, coreV := range []uint32{0, 1, 2} {
		if pos[coreV] > pos[3] || pos[coreV] > pos[4] {
			t.Fatalf("core vertex %d ordered after forest/leaf: %v", coreV, order)
		}
	}
	if pos[3] > pos[4] {
		t.Fatalf("forest after leaf: %v", order)
	}
}

func TestDAFOrderPrefersSmallCandidates(t *testing.T) {
	// Path of 4; candidate sizes strictly increasing from vertex 3 down.
	adj := pathAdj(4)
	cands := [][]uint32{
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2, 3},
		{0, 1, 2}, // score 1.5
		{0},       // score 1.0: strictly smallest -> root
	}
	order := VertexOrder(fakeQuery{adj}, cands, DAFH)
	if order[0] != 3 {
		t.Fatalf("DAF root = %d, want 3 (min |C|/deg): %v", order[0], order)
	}
	// Connected growth forces 2 next, then 1, then 0.
	want := []uint32{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("DAF order %v, want %v", order, want)
		}
	}
}

func TestCECIOrderIsBFS(t *testing.T) {
	// Star: center 0 adjacent to 1..4; root has the smallest candidates.
	adj := [][]uint32{{1, 2, 3, 4}, {0}, {0}, {0}, {0}}
	cands := [][]uint32{{0}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
	order := VertexOrder(fakeQuery{adj}, cands, CECIH)
	if order[0] != 0 {
		t.Fatalf("CECI root = %d: %v", order[0], order)
	}
	// BFS from the center visits all spokes afterwards (sorted).
	for i, want := range []uint32{0, 1, 2, 3, 4} {
		if order[i] != want {
			t.Fatalf("CECI order %v", order)
		}
	}
}

func TestGrowConnectedDisconnectedFallback(t *testing.T) {
	// Two components: growth must still produce a full permutation.
	adj := [][]uint32{{1}, {0}, {3}, {2}}
	cands := [][]uint32{{0}, {0}, {0}, {0}}
	for _, alg := range []Algorithm{CFLH, DAFH, CECIH} {
		order := VertexOrder(fakeQuery{adj}, cands, alg)
		if len(order) != 4 {
			t.Fatalf("%v: order %v not a permutation", alg, order)
		}
		seen := map[uint32]bool{}
		for _, u := range order {
			seen[u] = true
		}
		if len(seen) != 4 {
			t.Fatalf("%v: repeated vertices in %v", alg, order)
		}
	}
}
