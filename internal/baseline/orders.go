package baseline

import (
	"sort"
)

// VertexOrder computes the match-by-vertex matching order characterising
// the emulated algorithm. All three strategies produce connected orders on
// connected queries (each vertex after the first is primal-adjacent to an
// earlier one), which is required for the Theorem III.2 constraint to prune
// effectively.
//
// The emulations capture each algorithm's defining order policy over a
// shared IHS-filtered candidate space (see DESIGN.md substitution #4):
//
//   - CFL-H: core-forest-leaf decomposition — 2-core vertices first, then
//     forest vertices, leaves last (CFL's "postponing Cartesian products").
//   - DAF-H: DAG order from a min(|C(u)|/d(u)) root, always extending with
//     the frontier vertex of smallest candidate set (DAF's adaptive
//     candidate-size order).
//   - CECI-H: plain BFS-tree order from a min(|C(u)|) root (CECI's
//     BFS-based embedding-cluster construction order).
func VertexOrder(q interface {
	NumVertices() int
	AdjacentVertices(uint32) []uint32
	Degree(uint32) int
}, cands [][]uint32, alg Algorithm) []uint32 {
	n := q.NumVertices()
	if n == 0 {
		return nil
	}
	adj := make([][]uint32, n)
	for u := 0; u < n; u++ {
		adj[u] = q.AdjacentVertices(uint32(u))
	}
	switch alg {
	case CFLH:
		return cflOrder(n, adj, cands)
	case DAFH:
		return dafOrder(n, adj, cands)
	default:
		return ceciOrder(n, adj, cands)
	}
}

// tier classifies query vertices for the core-forest-leaf decomposition:
// 0 = core (2-core of the primal graph), 1 = forest, 2 = leaf (primal
// degree 1).
func coreForestLeaf(n int, adj [][]uint32) []int {
	deg := make([]int, n)
	for u := range adj {
		deg[u] = len(adj[u])
	}
	// Peel degree-<2 vertices repeatedly: survivors form the 2-core.
	inCore := make([]bool, n)
	work := append([]int(nil), deg...)
	removed := make([]bool, n)
	changed := true
	for changed {
		changed = false
		for u := 0; u < n; u++ {
			if !removed[u] && work[u] < 2 {
				removed[u] = true
				changed = true
				for _, w := range adj[u] {
					if !removed[w] {
						work[w]--
					}
				}
			}
		}
	}
	tier := make([]int, n)
	for u := 0; u < n; u++ {
		switch {
		case !removed[u]:
			inCore[u] = true
			tier[u] = 0
		case deg[u] <= 1:
			tier[u] = 2
		default:
			tier[u] = 1
		}
	}
	return tier
}

// cflOrder: start from the core vertex with the smallest candidate set
// (falling back to global minimum when the query has no 2-core), grow
// connected, preferring lower tiers (core before forest before leaves) and
// smaller candidate sets within a tier.
func cflOrder(n int, adj [][]uint32, cands [][]uint32) []uint32 {
	tier := coreForestLeaf(n, adj)
	better := func(a, b int) bool { // is a a better next pick than b
		if tier[a] != tier[b] {
			return tier[a] < tier[b]
		}
		if len(cands[a]) != len(cands[b]) {
			return len(cands[a]) < len(cands[b])
		}
		return a < b
	}
	return growConnected(n, adj, better)
}

// dafOrder: root minimising |C(u)|/d(u); extend with the connected vertex
// of smallest candidate set (DAF's candidate-size DAG order).
func dafOrder(n int, adj [][]uint32, cands [][]uint32) []uint32 {
	root := 0
	score := func(u int) float64 {
		d := len(adj[u])
		if d == 0 {
			d = 1
		}
		return float64(len(cands[u])) / float64(d)
	}
	for u := 1; u < n; u++ {
		if score(u) < score(root) {
			root = u
		}
	}
	better := func(a, b int) bool {
		if len(cands[a]) != len(cands[b]) {
			return len(cands[a]) < len(cands[b])
		}
		return a < b
	}
	return growConnectedFrom(n, adj, root, better)
}

// ceciOrder: plain FIFO BFS from the vertex with the smallest candidate
// set.
func ceciOrder(n int, adj [][]uint32, cands [][]uint32) []uint32 {
	root := 0
	for u := 1; u < n; u++ {
		if len(cands[u]) < len(cands[root]) {
			root = u
		}
	}
	order := make([]uint32, 0, n)
	visited := make([]bool, n)
	queue := []int{root}
	visited[root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, uint32(u))
		// Deterministic neighbour order.
		nb := append([]uint32(nil), adj[u]...)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		for _, w := range nb {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, int(w))
			}
		}
	}
	// Disconnected queries: append remaining vertices (the kernel still
	// enumerates correctly, just without early pruning across components).
	for u := 0; u < n; u++ {
		if !visited[u] {
			order = append(order, uint32(u))
		}
	}
	return order
}

// growConnected grows a connected order choosing the globally best start
// by the same comparator.
func growConnected(n int, adj [][]uint32, better func(a, b int) bool) []uint32 {
	start := 0
	for u := 1; u < n; u++ {
		if better(u, start) {
			start = u
		}
	}
	return growConnectedFrom(n, adj, start, better)
}

// growConnectedFrom grows a connected order from start, repeatedly adding
// the best frontier vertex per the comparator.
func growConnectedFrom(n int, adj [][]uint32, start int, better func(a, b int) bool) []uint32 {
	order := make([]uint32, 0, n)
	inOrder := make([]bool, n)
	frontier := make([]bool, n)
	add := func(u int) {
		order = append(order, uint32(u))
		inOrder[u] = true
		frontier[u] = false
		for _, w := range adj[u] {
			if !inOrder[w] {
				frontier[w] = true
			}
		}
	}
	add(start)
	for len(order) < n {
		best := -1
		for u := 0; u < n; u++ {
			if frontier[u] && (best < 0 || better(u, best)) {
				best = u
			}
		}
		if best < 0 {
			// Disconnected query: jump to the best unvisited vertex.
			for u := 0; u < n; u++ {
				if !inOrder[u] && (best < 0 || better(u, best)) {
					best = u
				}
			}
		}
		add(best)
	}
	return order
}
