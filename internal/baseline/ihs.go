package baseline

import (
	"hgmatch/internal/hypergraph"
)

// BuildCandidates computes the candidate vertex set C(u) for every query
// vertex using the incident hyperedge structure (IHS) filter of [30] as
// described in paper §III-B. A data vertex v enters C(u) iff:
//
//  1. Degree and label: l(u) = l(v) and d(u) ≤ d(v).
//  2. Number of adjacent vertices: |adj(u)| ≤ |adj(v)|.
//  3. Arity containment: ∀a, |he_a(u)| ≤ |he_a(v)|.
//  4. Hyperedge labels: every incident hyperedge of u has an incident
//     hyperedge of v with the same per-label vertex counts (equal
//     signatures).
//
// The paper applies this filter to all extended backtracking baselines
// (CFL-H, DAF-H, CECI-H), which is what this package does too.
//
// Candidate sets are sorted ascending.
func BuildCandidates(q, h *hypergraph.Hypergraph) [][]uint32 {
	// Group data vertices by label once.
	byLabel := make(map[hypergraph.Label][]uint32)
	for v := 0; v < h.NumVertices(); v++ {
		l := h.Label(uint32(v))
		byLabel[l] = append(byLabel[l], uint32(v))
	}

	// Lazily computed per-data-vertex features.
	adjCount := make(map[uint32]int)
	adjOf := func(v uint32) int {
		if c, ok := adjCount[v]; ok {
			return c
		}
		c := len(h.AdjacentVertices(v))
		adjCount[v] = c
		return c
	}
	arityHist := make(map[uint32]map[int]int)
	histOf := func(v uint32) map[int]int {
		if m, ok := arityHist[v]; ok {
			return m
		}
		m := h.ArityHistogram(v)
		arityHist[v] = m
		return m
	}
	// Per-data-vertex incident signature set, as interned SigIDs — no
	// canonical key bytes, one bit-set probe per check.
	sigSet := make(map[uint32]map[hypergraph.SigID]bool)
	sigsOf := func(v uint32) map[hypergraph.SigID]bool {
		if s, ok := sigSet[v]; ok {
			return s
		}
		s := make(map[hypergraph.SigID]bool)
		for _, e := range h.Incident(v) {
			s[h.SigIDOf(e)] = true
		}
		sigSet[v] = s
		return s
	}

	cands := make([][]uint32, q.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		uu := uint32(u)
		du := q.Degree(uu)
		adjU := len(q.AdjacentVertices(uu))
		histU := q.ArityHistogram(uu)
		// Incident signatures of u, interned against the data graph. A
		// query signature absent from the data graph's table disqualifies
		// every candidate of u immediately.
		var uSigs []hypergraph.SigID
		uImpossible := false
		for _, e := range q.Incident(uu) {
			id, ok := h.LookupSig(hypergraph.SignatureOf(q.Edge(e), q.Labels()))
			if !ok {
				uImpossible = true
				break
			}
			uSigs = append(uSigs, id)
		}
		if uImpossible {
			continue
		}

	dataVertex:
		for _, v := range byLabel[q.Label(uu)] {
			// Condition 1: degree (label equality via the byLabel group).
			if h.Degree(v) < du {
				continue
			}
			// Condition 2: adjacent vertex count.
			if adjOf(v) < adjU {
				continue
			}
			// Condition 3: arity containment.
			hv := histOf(v)
			for a, cu := range histU {
				if hv[a] < cu {
					continue dataVertex
				}
			}
			// Condition 4: hyperedge label multisets (signatures).
			vs := sigsOf(v)
			for _, s := range uSigs {
				if !vs[s] {
					continue dataVertex
				}
			}
			cands[u] = append(cands[u], v)
		}
	}
	return cands
}
