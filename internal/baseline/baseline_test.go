package baseline_test

import (
	"math/rand"
	"testing"
	"time"

	"hgmatch/internal/baseline"
	"hgmatch/internal/core"
	"hgmatch/internal/hgtest"
	"hgmatch/internal/hypergraph"
	"hgmatch/internal/setops"
)

var allAlgs = []baseline.Algorithm{baseline.CFLH, baseline.DAFH, baseline.CECIH}

func TestFig1AllBaselines(t *testing.T) {
	q, h := hgtest.Fig1Query(), hgtest.Fig1Data()
	for _, alg := range allAlgs {
		res := baseline.Match(q, h, baseline.Options{Algorithm: alg})
		if res.Embeddings != 2 {
			t.Errorf("%v: embeddings = %d, want 2", alg, res.Embeddings)
		}
		if res.Mappings < res.Embeddings {
			t.Errorf("%v: mappings %d < embeddings %d", alg, res.Mappings, res.Embeddings)
		}
		if res.TimedOut {
			t.Errorf("%v: spurious timeout", alg)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: Elapsed not recorded", alg)
		}
	}
}

// TestBaselinesAgreeWithHGMatch is the central cross-check: the three
// extended baselines and HGMatch must report identical embedding counts on
// randomized workloads. This validates both sides at once.
func TestBaselinesAgreeWithHGMatch(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
			NumVertices: 18, NumEdges: 35, NumLabels: 3, MaxArity: 4,
		})
		nq := 2 + int(seed%2)
		q := hgtest.ConnectedQueryFromWalk(rng, h, nq)
		if q == nil {
			continue
		}
		p, err := core.NewPlan(q, h)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := p.CountSequential()
		for _, alg := range allAlgs {
			res := baseline.Match(q, h, baseline.Options{Algorithm: alg})
			if res.Embeddings != want {
				t.Fatalf("seed %d %v: embeddings = %d, HGMatch = %d", seed, alg, res.Embeddings, want)
			}
		}
	}
}

func TestIHSCandidatesSoundOnFig1(t *testing.T) {
	q, h := hgtest.Fig1Query(), hgtest.Fig1Data()
	cands := baseline.BuildCandidates(q, h)
	if len(cands) != q.NumVertices() {
		t.Fatalf("got %d candidate sets", len(cands))
	}
	// Soundness: every vertex participating in a true embedding is in the
	// candidate set of its preimage. Embedding 1: u0→v0,u1→v1,u2→v2,
	// u3→v3 (or v6?), u4→v4. Check via containment of known mappings.
	mustContain := map[uint32][]uint32{
		0: {0}, // u0 can be v0
		1: {1}, // u1 can be v1
		2: {2}, // u2 can be v2
		4: {4}, // u4 can be v4
	}
	for u, vs := range mustContain {
		for _, v := range vs {
			if !setops.Contains(cands[u], v) {
				t.Errorf("C(u%d) = %v misses v%d", u, cands[u], v)
			}
		}
	}
	// Label discipline: candidates carry the query vertex's label.
	for u, c := range cands {
		for _, v := range c {
			if h.Label(v) != q.Label(uint32(u)) {
				t.Errorf("C(u%d) contains v%d with wrong label", u, v)
			}
		}
	}
}

func TestIHSFiltersByDegree(t *testing.T) {
	// Query vertex with degree 2 must exclude data vertices of degree 1.
	qb := hypergraph.NewBuilder()
	u0 := qb.AddVertex(0)
	u1 := qb.AddVertex(0)
	u2 := qb.AddVertex(0)
	qb.AddEdge(u0, u1)
	qb.AddEdge(u1, u2)
	q := qb.MustBuild() // u1 has degree 2

	hb := hypergraph.NewBuilder()
	v0 := hb.AddVertex(0)
	v1 := hb.AddVertex(0)
	v2 := hb.AddVertex(0)
	v3 := hb.AddVertex(0)
	hb.AddEdge(v0, v1)
	hb.AddEdge(v1, v2)
	hb.AddEdge(v2, v3)
	h := hb.MustBuild() // v1, v2 have degree 2; v0, v3 degree 1

	cands := baseline.BuildCandidates(q, h)
	for _, v := range cands[u1] {
		if h.Degree(v) < 2 {
			t.Errorf("C(u1) contains degree-%d vertex %d", h.Degree(v), v)
		}
	}
	if len(cands[u1]) != 2 {
		t.Errorf("C(u1) = %v, want exactly {v1, v2}", cands[u1])
	}
}

func TestIHSArityContainment(t *testing.T) {
	// u sits in a 3-ary edge; data vertices only in 2-ary edges must be
	// filtered even with sufficient degree.
	qb := hypergraph.NewBuilder()
	u0 := qb.AddVertex(0)
	u1 := qb.AddVertex(0)
	u2 := qb.AddVertex(0)
	qb.AddEdge(u0, u1, u2)
	q := qb.MustBuild()

	hb := hypergraph.NewBuilder()
	v0 := hb.AddVertex(0)
	v1 := hb.AddVertex(0)
	v2 := hb.AddVertex(0)
	v3 := hb.AddVertex(0)
	v4 := hb.AddVertex(0)
	hb.AddEdge(v0, v1, v2) // 3-ary
	hb.AddEdge(v3, v4)     // 2-ary only for v3, v4
	hb.AddEdge(v3, v0)
	hb.AddEdge(v4, v1)
	h := hb.MustBuild()

	cands := baseline.BuildCandidates(q, h)
	for _, v := range cands[u0] {
		if v == v3 || v == v4 {
			t.Errorf("arity containment failed: v%d in C(u0)", v)
		}
	}
}

func TestVertexOrdersArePermutations(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
			NumVertices: 20, NumEdges: 30, NumLabels: 2, MaxArity: 5,
		})
		q := hgtest.ConnectedQueryFromWalk(rng, h, 3)
		if q == nil {
			continue
		}
		cands := baseline.BuildCandidates(q, h)
		for _, alg := range allAlgs {
			order := baseline.VertexOrder(q, cands, alg)
			if len(order) != q.NumVertices() {
				t.Fatalf("%v: order length %d", alg, len(order))
			}
			seen := make(map[uint32]bool)
			for _, u := range order {
				if seen[u] {
					t.Fatalf("%v: repeated vertex %d", alg, u)
				}
				seen[u] = true
			}
			// Connectivity: each vertex after the first must be primal-
			// adjacent to an earlier one.
			for i := 1; i < len(order); i++ {
				ok := false
				adj := q.AdjacentVertices(order[i])
				for j := 0; j < i && !ok; j++ {
					ok = setops.Contains(adj, order[j])
				}
				if !ok {
					t.Fatalf("%v seed %d: order disconnected at %d", alg, seed, i)
				}
			}
		}
	}
}

func TestOrdersDiffer(t *testing.T) {
	// On a query with an obvious core/leaf split, the three strategies
	// should not all collapse to the same order for every input (they are
	// distinct algorithms). We only require that at least one pair differs
	// on at least one seed — a smoke check that the strategies are wired.
	differ := false
	for seed := int64(0); seed < 20 && !differ; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
			NumVertices: 25, NumEdges: 40, NumLabels: 2, MaxArity: 5,
		})
		q := hgtest.ConnectedQueryFromWalk(rng, h, 4)
		if q == nil {
			continue
		}
		cands := baseline.BuildCandidates(q, h)
		a := baseline.VertexOrder(q, cands, baseline.CFLH)
		b := baseline.VertexOrder(q, cands, baseline.DAFH)
		c := baseline.VertexOrder(q, cands, baseline.CECIH)
		if !equalU32(a, b) || !equalU32(b, c) {
			differ = true
		}
	}
	if !differ {
		t.Error("all three order strategies identical on 20 seeds")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBaselineTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
		NumVertices: 40, NumEdges: 400, NumLabels: 1, MaxArity: 3,
	})
	q := hgtest.ConnectedQueryFromWalk(rng, h, 4)
	if q == nil {
		t.Skip("no query")
	}
	res := baseline.Match(q, h, baseline.Options{Algorithm: baseline.CFLH, Timeout: time.Microsecond})
	// Bound the comparison run so the test stays fast: a mapping-limited
	// run that hits its limit proves the workload is heavy enough that the
	// microsecond run must have timed out rather than finished.
	bounded := baseline.Match(q, h, baseline.Options{Algorithm: baseline.CFLH, Limit: 2_000_000})
	if !res.TimedOut && bounded.Mappings >= 2_000_000 {
		t.Error("microsecond timeout not reported on a heavy workload")
	}
}

func TestBaselineLimit(t *testing.T) {
	q, h := hgtest.Fig1Query(), hgtest.Fig1Data()
	res := baseline.Match(q, h, baseline.Options{Algorithm: baseline.CECIH, Limit: 1})
	if res.Mappings != 1 {
		t.Errorf("limit run enumerated %d mappings", res.Mappings)
	}
}

func TestAlgorithmString(t *testing.T) {
	if baseline.CFLH.String() != "CFL-H" || baseline.DAFH.String() != "DAF-H" || baseline.CECIH.String() != "CECI-H" {
		t.Error("algorithm names wrong")
	}
	if baseline.Algorithm(9).String() != "baseline" {
		t.Error("fallback name wrong")
	}
}

func TestEmptyCandidateShortCircuit(t *testing.T) {
	qb := hypergraph.NewBuilder()
	u0 := qb.AddVertex(42) // label absent from data
	u1 := qb.AddVertex(42)
	qb.AddEdge(u0, u1)
	q := qb.MustBuild()
	res := baseline.Match(q, hgtest.Fig1Data(), baseline.Options{})
	if res.Embeddings != 0 || res.Recursions != 0 {
		t.Errorf("short circuit failed: %+v", res)
	}
}
