// Package querygen samples query hypergraphs from data hypergraphs by
// hyperedge random walks, reproducing the paper's query workload (§VII-A):
// "we perform a random walk in the data hypergraph to generate
// subhypergraphs with the given number of hyperedges whose number of
// vertices is in the range [|V|min, |V|max]". Because queries are sampled
// subhypergraphs, every query has at least one embedding in its data
// hypergraph.
package querygen

import (
	"math/rand"

	"hgmatch/internal/hypergraph"
)

// Setting is one row of the paper's Table III.
type Setting struct {
	Name        string
	NumEdges    int // |E|
	MinVertices int // |V|min
	MaxVertices int // |V|max
}

// Settings returns the paper's four query settings (Table III).
func Settings() []Setting {
	return []Setting{
		{Name: "q2", NumEdges: 2, MinVertices: 5, MaxVertices: 15},
		{Name: "q3", NumEdges: 3, MinVertices: 10, MaxVertices: 20},
		{Name: "q4", NumEdges: 4, MinVertices: 10, MaxVertices: 30},
		{Name: "q6", NumEdges: 6, MinVertices: 15, MaxVertices: 35},
	}
}

// SettingByName returns the named setting, or false.
func SettingByName(name string) (Setting, bool) {
	for _, s := range Settings() {
		if s.Name == name {
			return s, true
		}
	}
	return Setting{}, false
}

// maxAttempts bounds the rejection sampling per query.
const maxAttempts = 400

// Sample draws one connected query with exactly s.NumEdges hyperedges and
// a vertex count within [MinVertices, MaxVertices]. When the data
// hypergraph cannot satisfy the vertex range (e.g. low-arity graphs for
// large settings), the range constraint is progressively relaxed so
// experiments always get a query of the right edge count; it returns nil
// only if no connected s.NumEdges-edge subhypergraph can be found at all.
func Sample(rng *rand.Rand, h *hypergraph.Hypergraph, s Setting) *hypergraph.Hypergraph {
	if h.NumEdges() == 0 || s.NumEdges < 1 {
		return nil
	}
	var fallback []hypergraph.EdgeID
	for attempt := 0; attempt < maxAttempts; attempt++ {
		edges := walk(rng, h, s.NumEdges)
		if edges == nil {
			continue
		}
		nv := countVertices(h, edges)
		if nv >= s.MinVertices && nv <= s.MaxVertices {
			return extract(h, edges)
		}
		if fallback == nil {
			fallback = edges
		}
	}
	if fallback == nil {
		return nil
	}
	return extract(h, fallback)
}

// SampleMany draws count queries (some may be nil if the graph is too
// small or disconnected for the setting).
func SampleMany(rng *rand.Rand, h *hypergraph.Hypergraph, s Setting, count int) []*hypergraph.Hypergraph {
	out := make([]*hypergraph.Hypergraph, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, Sample(rng, h, s))
	}
	return out
}

// walk collects n distinct, connected hyperedges by randomly walking
// across adjacent hyperedges.
func walk(rng *rand.Rand, h *hypergraph.Hypergraph, n int) []hypergraph.EdgeID {
	start := hypergraph.EdgeID(rng.Intn(h.NumEdges()))
	chosen := make(map[hypergraph.EdgeID]bool, n)
	chosen[start] = true
	order := []hypergraph.EdgeID{start}
	cur := start
	stuck := 0
	for len(order) < n && stuck < 4*n+16 {
		// Step to a random adjacent hyperedge of the current one via a
		// random shared vertex.
		vs := h.Edge(cur)
		v := vs[rng.Intn(len(vs))]
		inc := h.Incident(v)
		next := inc[rng.Intn(len(inc))]
		if next == cur {
			stuck++
			continue
		}
		if !chosen[next] {
			chosen[next] = true
			order = append(order, next)
			stuck = 0
		} else {
			stuck++
		}
		cur = next
		// Occasionally jump back to a random already-chosen edge so the
		// walk can branch instead of only chaining.
		if rng.Intn(3) == 0 {
			cur = order[rng.Intn(len(order))]
		}
	}
	if len(order) < n {
		return nil
	}
	return order
}

func countVertices(h *hypergraph.Hypergraph, edges []hypergraph.EdgeID) int {
	seen := make(map[uint32]bool)
	for _, e := range edges {
		for _, v := range h.Edge(e) {
			seen[v] = true
		}
	}
	return len(seen)
}

// extract materialises the standalone query hypergraph induced by the
// chosen data hyperedges (hypergraph.Extract carries labels, hyperedge
// labels and dictionaries over, so serialised queries stay name-aligned
// with their dataset).
func extract(h *hypergraph.Hypergraph, edges []hypergraph.EdgeID) *hypergraph.Hypergraph {
	return hypergraph.MustExtract(h, edges)
}
