package querygen_test

import (
	"math/rand"
	"testing"

	"hgmatch/internal/core"
	"hgmatch/internal/datagen"
	"hgmatch/internal/hgtest"
	"hgmatch/internal/querygen"
)

func TestSettingsMatchTable3(t *testing.T) {
	ss := querygen.Settings()
	want := []querygen.Setting{
		{Name: "q2", NumEdges: 2, MinVertices: 5, MaxVertices: 15},
		{Name: "q3", NumEdges: 3, MinVertices: 10, MaxVertices: 20},
		{Name: "q4", NumEdges: 4, MinVertices: 10, MaxVertices: 30},
		{Name: "q6", NumEdges: 6, MinVertices: 15, MaxVertices: 35},
	}
	if len(ss) != len(want) {
		t.Fatalf("%d settings", len(ss))
	}
	for i := range want {
		if ss[i] != want[i] {
			t.Errorf("setting %d = %+v, want %+v", i, ss[i], want[i])
		}
	}
	if _, ok := querygen.SettingByName("q4"); !ok {
		t.Error("SettingByName(q4) failed")
	}
	if _, ok := querygen.SettingByName("q5"); ok {
		t.Error("SettingByName(q5) succeeded")
	}
}

func TestSampleProperties(t *testing.T) {
	p, _ := datagen.ProfileByName("SB")
	h := datagen.Generate(p.Scaled(0.1), 3)
	rng := rand.New(rand.NewSource(1))
	for _, s := range querygen.Settings() {
		for i := 0; i < 5; i++ {
			q := querygen.Sample(rng, h, s)
			if q == nil {
				t.Fatalf("%s: Sample returned nil", s.Name)
			}
			if q.NumEdges() != s.NumEdges {
				t.Errorf("%s: query has %d edges, want %d", s.Name, q.NumEdges(), s.NumEdges)
			}
			if err := q.Validate(); err != nil {
				t.Fatal(err)
			}
			// Connected (plan computation requires it).
			if _, err := core.ComputeMatchingOrder(q, h); err != nil {
				t.Errorf("%s: sampled query not usable: %v", s.Name, err)
			}
		}
	}
}

// TestSampledQueriesHaveEmbeddings: queries are sampled subhypergraphs, so
// each must match at least once in its data hypergraph (the paper relies on
// this for its workload).
func TestSampledQueriesHaveEmbeddings(t *testing.T) {
	p, _ := datagen.ProfileByName("CH")
	h := datagen.Generate(p.Scaled(0.2), 9)
	rng := rand.New(rand.NewSource(2))
	s, _ := querygen.SettingByName("q3")
	for i := 0; i < 10; i++ {
		q := querygen.Sample(rng, h, s)
		if q == nil {
			t.Fatal("nil query")
		}
		plan, err := core.NewPlan(q, h)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := plan.CountSequential()
		if n == 0 {
			t.Fatalf("sampled query %d has no embedding", i)
		}
	}
}

func TestSampleManyAndVertexRange(t *testing.T) {
	// On the Fig.1 toy graph, q2's vertex range [5,15] may require the
	// relaxation path; the query must still have 2 edges.
	h := hgtest.Fig1Data()
	rng := rand.New(rand.NewSource(3))
	s, _ := querygen.SettingByName("q2")
	qs := querygen.SampleMany(rng, h, s, 5)
	if len(qs) != 5 {
		t.Fatalf("SampleMany returned %d", len(qs))
	}
	for _, q := range qs {
		if q == nil || q.NumEdges() != 2 {
			t.Fatalf("bad sampled query %v", q)
		}
	}
}

func TestSampleImpossible(t *testing.T) {
	// Single-edge hypergraph cannot yield a 3-edge connected query.
	h := hgtest.Fig1Query() // any small graph
	rng := rand.New(rand.NewSource(4))
	q := querygen.Sample(rng, h, querygen.Setting{Name: "x", NumEdges: 99, MinVertices: 1, MaxVertices: 1000})
	if q != nil {
		t.Fatal("expected nil for impossible setting")
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	p, _ := datagen.ProfileByName("CP")
	h := datagen.Generate(p.Scaled(0.1), 5)
	s, _ := querygen.SettingByName("q3")
	q1 := querygen.Sample(rand.New(rand.NewSource(7)), h, s)
	q2 := querygen.Sample(rand.New(rand.NewSource(7)), h, s)
	if q1.NumVertices() != q2.NumVertices() || q1.NumEdges() != q2.NumEdges() {
		t.Fatal("same seed produced different queries")
	}
}
