// Package bipartite implements the strawman hypergraph-to-bipartite-graph
// conversion of the paper's Fig. 2 and a conventional subgraph matcher over
// the converted graphs, which together form the RapidMatch baseline of the
// evaluation (§VII-A: "we directly convert the query and data hypergraph to
// bipartite graphs in RapidMatch").
//
// In the converted graph every original vertex becomes a vertex-node
// keeping its label, every hyperedge becomes an edge-node labelled by its
// arity, and incidences become edges. The conversion inflates the graph —
// a hyperedge of arity k becomes k edges — which is exactly the penalty the
// paper's introduction quantifies.
package bipartite

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"hgmatch/internal/hypergraph"
	"hgmatch/internal/setops"
)

// Graph is a labelled undirected pairwise graph in adjacency-list form.
type Graph struct {
	Labels []uint32   // node -> label
	Adj    [][]uint32 // node -> sorted neighbours

	// NumVertexNodes: nodes [0, NumVertexNodes) are vertex-nodes; nodes
	// [NumVertexNodes, len(Labels)) are edge-nodes (hyperedge i maps to
	// node NumVertexNodes+i).
	NumVertexNodes int
}

// edge-node labels share a namespace with vertex labels; offset them far
// above any vertex label (vertex labels are dense small ints in practice).
const edgeLabelBase = 1 << 30

// Convert builds the bipartite representation of h (paper Fig. 2).
// Edge-nodes are labelled edgeLabelBase+arity so that only same-arity
// hyperedges can match each other, which conventional label-based filters
// then exploit.
func Convert(h *hypergraph.Hypergraph) *Graph {
	nv, ne := h.NumVertices(), h.NumEdges()
	g := &Graph{
		Labels:         make([]uint32, nv+ne),
		Adj:            make([][]uint32, nv+ne),
		NumVertexNodes: nv,
	}
	for v := 0; v < nv; v++ {
		g.Labels[v] = h.Label(uint32(v))
		inc := h.Incident(uint32(v))
		nb := make([]uint32, len(inc))
		for i, e := range inc {
			nb[i] = uint32(nv) + e
		}
		g.Adj[v] = nb // incident edge IDs are sorted, so neighbours are too
	}
	for e := 0; e < ne; e++ {
		node := nv + e
		g.Labels[node] = edgeLabelBase + uint32(h.Arity(uint32(e)))
		g.Adj[node] = append([]uint32(nil), h.Edge(uint32(e))...)
	}
	return g
}

// NumNodes returns the total node count (|V| + |E| of the hypergraph).
func (g *Graph) NumNodes() int { return len(g.Labels) }

// NumEdges returns the pairwise edge count (= Σ_e a(e) of the hypergraph).
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// Degree returns a node's degree.
func (g *Graph) Degree(n uint32) int { return len(g.Adj[n]) }

// Options configures a Match run over converted graphs.
type Options struct {
	Timeout time.Duration
	Limit   uint64 // max vertex mappings (0 = unlimited)
}

// Result reports a bipartite baseline run; fields mirror baseline.Result.
type Result struct {
	Embeddings uint64 // distinct hyperedge tuples (comparable with HGMatch)
	Mappings   uint64
	Recursions uint64
	Elapsed    time.Duration
	TimedOut   bool
}

// Match enumerates subgraph-isomorphism embeddings of query qg in data dg,
// where both are conversions of hypergraphs, and counts distinct hyperedge
// tuples. qh is the original query hypergraph (needed only to size the
// tuple key); qg/dg must come from Convert.
func Match(qh *hypergraph.Hypergraph, qg, dg *Graph, opts Options) (res Result) {
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()

	n := qg.NumNodes()
	if n == 0 {
		return res
	}
	// Label-and-degree candidate filter (the standard LDF used by the
	// RapidMatch study's preprocessing).
	byLabel := make(map[uint32][]uint32)
	for v := 0; v < dg.NumNodes(); v++ {
		byLabel[dg.Labels[v]] = append(byLabel[dg.Labels[v]], uint32(v))
	}
	cands := make([][]uint32, n)
	for u := 0; u < n; u++ {
		for _, v := range byLabel[qg.Labels[u]] {
			if dg.Degree(v) >= qg.Degree(uint32(u)) {
				cands[u] = append(cands[u], v)
			}
		}
		if len(cands[u]) == 0 {
			return res
		}
	}

	order := matchOrder(qg, cands)
	// Backward neighbours: for order position i, the earlier positions
	// adjacent to order[i]; data candidates must be adjacent to their
	// images (edge-compatibility constraint of pairwise matching).
	pos := make([]int, n)
	for i, u := range order {
		pos[u] = i
	}
	backNbrs := make([][]uint32, n)
	for i, u := range order {
		for _, w := range qg.Adj[u] {
			if pos[w] < i {
				backNbrs[i] = append(backNbrs[i], w)
			}
		}
	}

	st := &bpState{
		qg: qg, dg: dg, qh: qh,
		order: order, cands: cands, backNbrs: backNbrs,
		f:      make([]uint32, n),
		used:   make(map[uint32]bool, n),
		limit:  opts.Limit,
		tuples: make(map[string]struct{}),
	}
	if opts.Timeout > 0 {
		st.deadline = start.Add(opts.Timeout)
		st.hasDL = true
	}
	st.enumerate(0)

	res.Mappings = st.mappings
	res.Recursions = st.recursions
	res.Embeddings = uint64(len(st.tuples))
	res.TimedOut = st.stopped && st.hasDL
	return res
}

// MatchHypergraphs converts both hypergraphs and matches them.
func MatchHypergraphs(q, h *hypergraph.Hypergraph, opts Options) Result {
	return Match(q, Convert(q), Convert(h), opts)
}

type bpState struct {
	qg, dg   *Graph
	qh       *hypergraph.Hypergraph
	order    []uint32
	cands    [][]uint32
	backNbrs [][]uint32
	f        []uint32
	used     map[uint32]bool

	mappings   uint64
	recursions uint64
	limit      uint64
	deadline   time.Time
	hasDL      bool
	stopped    bool
	tuples     map[string]struct{}
}

func (st *bpState) enumerate(i int) {
	st.recursions++
	if st.stopped {
		return
	}
	if st.hasDL && st.recursions&0xFFF == 0 && !time.Now().Before(st.deadline) {
		st.stopped = true
		return
	}
	if i == len(st.order) {
		st.record()
		return
	}
	u := st.order[i]
candidates:
	for _, v := range st.cands[u] {
		if st.used[v] {
			continue
		}
		for _, w := range st.backNbrs[i] {
			if !setops.Contains(st.dg.Adj[v], st.f[w]) {
				continue candidates
			}
		}
		st.f[u] = v
		st.used[v] = true
		st.enumerate(i + 1)
		delete(st.used, v)
		if st.stopped {
			return
		}
	}
}

// record keys the mapping by the images of the query's edge-nodes: two
// mappings hitting the same data hyperedges are the same subhypergraph
// embedding.
func (st *bpState) record() {
	st.mappings++
	if st.limit > 0 && st.mappings >= st.limit {
		st.stopped = true
	}
	nq := st.qg.NumNodes() - st.qg.NumVertexNodes
	key := make([]byte, 0, 4*nq)
	var tmp [4]byte
	for e := 0; e < nq; e++ {
		node := uint32(st.qg.NumVertexNodes + e)
		img := st.f[node] - uint32(st.dg.NumVertexNodes) // data hyperedge ID
		binary.BigEndian.PutUint32(tmp[:], img)
		key = append(key, tmp[:]...)
	}
	st.tuples[string(key)] = struct{}{}
}

// matchOrder: connected order preferring small candidate sets, starting at
// the globally rarest node — the common GQL-style ordering the RapidMatch
// study uses for its left-deep join plans.
func matchOrder(qg *Graph, cands [][]uint32) []uint32 {
	n := qg.NumNodes()
	order := make([]uint32, 0, n)
	inOrder := make([]bool, n)
	frontier := make([]bool, n)
	better := func(a, b int) bool {
		if len(cands[a]) != len(cands[b]) {
			return len(cands[a]) < len(cands[b])
		}
		if qg.Degree(uint32(a)) != qg.Degree(uint32(b)) {
			return qg.Degree(uint32(a)) > qg.Degree(uint32(b))
		}
		return a < b
	}
	add := func(u int) {
		order = append(order, uint32(u))
		inOrder[u] = true
		frontier[u] = false
		for _, w := range qg.Adj[u] {
			if !inOrder[w] {
				frontier[w] = true
			}
		}
	}
	start := 0
	for u := 1; u < n; u++ {
		if better(u, start) {
			start = u
		}
	}
	add(start)
	for len(order) < n {
		best := -1
		for u := 0; u < n; u++ {
			if frontier[u] && (best < 0 || better(u, best)) {
				best = u
			}
		}
		if best < 0 {
			for u := 0; u < n; u++ {
				if !inOrder[u] && (best < 0 || better(u, best)) {
					best = u
				}
			}
		}
		add(best)
	}
	return order
}

// Validate checks adjacency-list invariants (sortedness, symmetry,
// bipartiteness between vertex- and edge-nodes).
func (g *Graph) Validate() error {
	for u, nb := range g.Adj {
		if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
			return fmt.Errorf("bipartite: adjacency of node %d not sorted", u)
		}
		uIsVertex := u < g.NumVertexNodes
		for _, w := range nb {
			wIsVertex := int(w) < g.NumVertexNodes
			if uIsVertex == wIsVertex {
				return fmt.Errorf("bipartite: edge %d-%d within one side", u, w)
			}
			if !setops.Contains(g.Adj[w], uint32(u)) {
				return fmt.Errorf("bipartite: edge %d-%d not symmetric", u, w)
			}
		}
	}
	return nil
}
