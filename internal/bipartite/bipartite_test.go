package bipartite_test

import (
	"math/rand"
	"testing"

	"hgmatch/internal/bipartite"
	"hgmatch/internal/core"
	"hgmatch/internal/hgtest"
	"hgmatch/internal/setops"
)

// TestConvertFig1 checks the conversion against the paper's Fig. 2: the
// data hypergraph of Fig. 1b becomes a bipartite graph with 7 vertex-nodes
// below and 6 edge-nodes above, edges being incidences.
func TestConvertFig1(t *testing.T) {
	h := hgtest.Fig1Data()
	g := bipartite.Convert(h)
	if g.NumVertexNodes != 7 || g.NumNodes() != 13 {
		t.Fatalf("nodes = %d/%d, want 7 vertex nodes of 13", g.NumVertexNodes, g.NumNodes())
	}
	// Pairwise edge count = total arity = 2+2+3+3+4+4 = 18.
	if g.NumEdges() != 18 {
		t.Errorf("edges = %d, want 18", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertex-node labels carry over; v4 has label B.
	if g.Labels[4] != hgtest.B {
		t.Errorf("label of v4 = %d", g.Labels[4])
	}
	// Edge-node of e5 (arity 4) has an arity-derived label distinct from
	// e1's (arity 2).
	if g.Labels[7+4] == g.Labels[7+0] {
		t.Error("different arities share an edge-node label")
	}
	// v4 is incident to e1,e2,e5,e6 -> neighbours 7,8,11,12.
	if !setops.Equal(g.Adj[4], []uint32{7, 8, 11, 12}) {
		t.Errorf("Adj(v4) = %v", g.Adj[4])
	}
}

func TestMatchFig1(t *testing.T) {
	q, h := hgtest.Fig1Query(), hgtest.Fig1Data()
	res := bipartite.MatchHypergraphs(q, h, bipartite.Options{})
	if res.Embeddings != 2 {
		t.Errorf("bipartite embeddings = %d, want 2", res.Embeddings)
	}
	if res.Mappings < 2 {
		t.Errorf("mappings = %d", res.Mappings)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

// TestBipartiteAgreesWithHGMatch cross-checks the RapidMatch-style
// bipartite baseline against the match-by-hyperedge engine.
func TestBipartiteAgreesWithHGMatch(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
			NumVertices: 15, NumEdges: 25, NumLabels: 3, MaxArity: 4,
		})
		q := hgtest.ConnectedQueryFromWalk(rng, h, 2)
		if q == nil {
			continue
		}
		p, err := core.NewPlan(q, h)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := p.CountSequential()
		res := bipartite.MatchHypergraphs(q, h, bipartite.Options{})
		if res.Embeddings != want {
			t.Fatalf("seed %d: bipartite = %d, HGMatch = %d", seed, res.Embeddings, want)
		}
	}
}

func TestInflationShape(t *testing.T) {
	// The conversion inflates: node count = |V|+|E|, pairwise edges =
	// Σ a(e) ≥ 2|E|; for high-arity hypergraphs the blowup is large
	// (paper intro: 17M nodes → 1B edges example).
	rng := rand.New(rand.NewSource(4))
	h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
		NumVertices: 50, NumEdges: 80, NumLabels: 3, MaxArity: 12,
	})
	g := bipartite.Convert(h)
	if g.NumNodes() != h.NumVertices()+h.NumEdges() {
		t.Errorf("node inflation wrong: %d vs %d+%d", g.NumNodes(), h.NumVertices(), h.NumEdges())
	}
	if g.NumEdges() != h.TotalArity() {
		t.Errorf("edge inflation: %d vs total arity %d", g.NumEdges(), h.TotalArity())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchLimit(t *testing.T) {
	q, h := hgtest.Fig1Query(), hgtest.Fig1Data()
	res := bipartite.MatchHypergraphs(q, h, bipartite.Options{Limit: 1})
	if res.Mappings != 1 {
		t.Errorf("limit: %d mappings", res.Mappings)
	}
}

func TestDegreeAccessor(t *testing.T) {
	g := bipartite.Convert(hgtest.Fig1Data())
	if g.Degree(4) != 4 { // v4 in 4 hyperedges
		t.Errorf("Degree(v4) = %d", g.Degree(4))
	}
	if g.Degree(11) != 4 { // e5 node has arity 4
		t.Errorf("Degree(e5 node) = %d", g.Degree(11))
	}
}
