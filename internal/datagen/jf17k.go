package datagen

import (
	"math/rand"

	"hgmatch/internal/hypergraph"
)

// KB is the synthetic JF17K-style hypergraph knowledge base used by the
// paper's §VII-D case study. Vertices are typed entities (the type is the
// vertex label); hyperedges are non-binary facts. Two relation schemas from
// the paper are generated:
//
//	(Player, Team, Match)            — a player played a match for a team
//	(Actor, Character, TVShow, Season) — an actor played a character in a
//	                                     show's season
//
// The real JF17K (a Freebase subset) is unavailable offline; the generator
// plants both incidental and guaranteed answers for the case-study queries
// (DESIGN.md substitution #7).
type KB struct {
	Graph *hypergraph.Hypergraph
	Dict  *hypergraph.Dict

	Player, Team, Match              hypergraph.Label
	Actor, Character, TVShow, Season hypergraph.Label
}

// KBConfig sizes the synthetic knowledge base.
type KBConfig struct {
	Players, Teams, Matches int
	Actors, Characters      int
	Shows, Seasons          int
	PlayFacts, ActFacts     int
	// PlantedTransfers is the number of players guaranteed to have played
	// for two different teams in two different matches (query-1 answers).
	PlantedTransfers int
	// PlantedRecasts is the number of (character, show) pairs guaranteed
	// to be played by one actor in two different seasons (query-2
	// answers).
	PlantedRecasts int
}

// DefaultKBConfig mirrors the scale of a small Freebase slice.
func DefaultKBConfig() KBConfig {
	return KBConfig{
		Players: 400, Teams: 40, Matches: 120,
		Actors: 300, Characters: 200, Shows: 50, Seasons: 8,
		PlayFacts: 1500, ActFacts: 1200,
		PlantedTransfers: 25, PlantedRecasts: 12,
	}
}

// GenerateKB builds the knowledge base deterministically per seed.
func GenerateKB(cfg KBConfig, seed int64) *KB {
	rng := rand.New(rand.NewSource(seed))
	d := hypergraph.NewDict()
	kb := &KB{
		Dict:      d,
		Player:    d.Intern("Player"),
		Team:      d.Intern("Team"),
		Match:     d.Intern("Match"),
		Actor:     d.Intern("Actor"),
		Character: d.Intern("Character"),
		TVShow:    d.Intern("TVShow"),
		Season:    d.Intern("Season"),
	}
	b := hypergraph.NewBuilder().WithDicts(d, nil)

	addN := func(n int, l hypergraph.Label) []uint32 {
		out := make([]uint32, n)
		for i := 0; i < n; i++ {
			out[i] = b.AddVertex(l)
		}
		return out
	}
	players := addN(cfg.Players, kb.Player)
	teams := addN(cfg.Teams, kb.Team)
	matches := addN(cfg.Matches, kb.Match)
	actors := addN(cfg.Actors, kb.Actor)
	chars := addN(cfg.Characters, kb.Character)
	shows := addN(cfg.Shows, kb.TVShow)
	seasons := addN(cfg.Seasons, kb.Season)

	pick := func(xs []uint32) uint32 { return xs[rng.Intn(len(xs))] }

	// Planted query-1 answers: one player, two teams, two matches.
	for i := 0; i < cfg.PlantedTransfers && i < len(players); i++ {
		pl := players[i]
		t1, t2 := teams[rng.Intn(len(teams))], teams[rng.Intn(len(teams))]
		for t2 == t1 {
			t2 = pick(teams)
		}
		m1, m2 := pick(matches), pick(matches)
		for m2 == m1 {
			m2 = pick(matches)
		}
		b.AddEdge(pl, t1, m1)
		b.AddEdge(pl, t2, m2)
	}
	// Background play facts.
	for i := 0; i < cfg.PlayFacts; i++ {
		b.AddEdge(pick(players), pick(teams), pick(matches))
	}

	// Planted query-2 answers. The paper's Fig. 13b query shares the
	// character and show between two facts with DIFFERENT actors and
	// DIFFERENT seasons (e.g. Pingu played by Carlo Bonomi in seasons 1-4
	// and by David Sant in seasons 5-6). Plant recast characters.
	for i := 0; i < cfg.PlantedRecasts && i < len(chars); i++ {
		ch := chars[i]
		sh := pick(shows)
		a1, a2 := pick(actors), pick(actors)
		for a2 == a1 {
			a2 = pick(actors)
		}
		s1, s2 := pick(seasons), pick(seasons)
		for s2 == s1 {
			s2 = pick(seasons)
		}
		b.AddEdge(a1, ch, sh, s1)
		b.AddEdge(a2, ch, sh, s2)
	}
	// Background acting facts.
	for i := 0; i < cfg.ActFacts; i++ {
		b.AddEdge(pick(actors), pick(chars), pick(shows), pick(seasons))
	}

	kb.Graph = b.MustBuild()
	return kb
}

// Query1 builds the paper's Fig. 13a query: "football players who
// represented different teams in different matches" — two (Player, Team,
// Match) facts sharing the player.
func (kb *KB) Query1() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder().WithDicts(kb.Dict, nil)
	pl := b.AddVertex(kb.Player)
	t1 := b.AddVertex(kb.Team)
	m1 := b.AddVertex(kb.Match)
	t2 := b.AddVertex(kb.Team)
	m2 := b.AddVertex(kb.Match)
	b.AddEdge(pl, t1, m1)
	b.AddEdge(pl, t2, m2)
	return b.MustBuild()
}

// Query2 builds the paper's Fig. 13b query: "actors who played the same
// character in a TV show on different seasons" — two (Actor, Character,
// TVShow, Season) facts sharing the character and the show, with distinct
// actors and seasons (injectivity forces the distinctness).
func (kb *KB) Query2() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder().WithDicts(kb.Dict, nil)
	ch := b.AddVertex(kb.Character)
	sh := b.AddVertex(kb.TVShow)
	a1 := b.AddVertex(kb.Actor)
	s1 := b.AddVertex(kb.Season)
	a2 := b.AddVertex(kb.Actor)
	s2 := b.AddVertex(kb.Season)
	b.AddEdge(a1, ch, sh, s1)
	b.AddEdge(a2, ch, sh, s2)
	return b.MustBuild()
}
