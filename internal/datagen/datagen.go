// Package datagen generates synthetic labelled hypergraphs calibrated to
// the ten real-world datasets of the paper's Table II (house committees,
// MathOverflow answers, contact high school, contact primary school, senate
// bills, house bills, Walmart trips, Trivago clicks, StackOverflow answers,
// Amazon reviews).
//
// The real datasets come from Benson's collection and are not available in
// this offline environment; the generators reproduce each dataset's
// characteristic *shape* — label-set size, average and maximum arity, and
// power-law vertex degrees — which is what drives the paper's qualitative
// results (high-arity datasets benefit from match-by-hyperedge the most).
// See DESIGN.md substitution #1. Generation is deterministic per seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"hgmatch/internal/hypergraph"
)

// Profile describes one dataset's shape. PaperVertices/PaperEdges record
// the real dataset's size from Table II for documentation; Generate uses
// NumVertices/NumEdges (the scaled size).
type Profile struct {
	Name        string
	Description string

	PaperVertices int
	PaperEdges    int

	NumVertices int
	NumEdges    int
	NumLabels   int     // |Σ|
	MaxArity    int     // a_max
	AvgArity    float64 // a

	// LabelSkew is the Zipf s-parameter for vertex label frequencies
	// (1 = strongly skewed, 0 = uniform).
	LabelSkew float64
	// DegreeSkew in [0,1] is the probability a hyperedge member is drawn
	// by preferential attachment rather than uniformly; higher values give
	// heavier-tailed degree distributions (paper §I challenge 2: power-law
	// graphs cause workload disparity).
	DegreeSkew float64
	// Redundancy in [0,1) is the probability a new hyperedge is generated
	// by mutating an existing one (resampling ~a quarter of its members)
	// instead of from scratch. Real-world hypergraphs are structurally
	// redundant — similar committees, co-purchase baskets, contact
	// groups — which is what gives the paper's Fig. 6 its wide
	// embedding-count distributions. Defaults to 0.45 when unset.
	Redundancy float64
}

// Scaled returns a copy with vertex and edge counts multiplied by f.
// Labels and the average arity are shape parameters and stay fixed; the
// maximum arity scales with f (floored at ~2× the average) so that a
// handful of near-a_max hyperedges cannot dominate a shrunken edge set the
// way they could not dominate the full-size one. All arity parameters are
// clamped to the scaled vertex count. Floors keep even tiny scales
// exercisable by the Table III query settings.
func (p Profile) Scaled(f float64) Profile {
	q := p
	q.NumVertices = clampMin(int(float64(p.NumVertices)*f), 64)
	q.NumEdges = clampMin(int(float64(p.NumEdges)*f), 64)
	// Low-arity datasets (the contact networks) saturate: scaling |V| and
	// |E| by the same factor quadratically densifies the space of
	// possible distinct hyperedges until deduplication eats the edge
	// budget. Keep the pair space at least 8× the edge count.
	if p.AvgArity < 3.5 {
		minV := 2 * int(math.Sqrt(8*float64(q.NumEdges)))
		if q.NumVertices < minV && minV <= p.NumVertices {
			q.NumVertices = minV
		}
	}
	if q.NumLabels > q.NumVertices {
		q.NumLabels = q.NumVertices
	}
	scaledMax := clampMin(int(float64(p.MaxArity)*f), int(2*p.AvgArity)+2)
	if scaledMax < q.MaxArity {
		q.MaxArity = scaledMax
	}
	if q.MaxArity > q.NumVertices {
		q.MaxArity = q.NumVertices
	}
	if q.AvgArity > float64(q.MaxArity) {
		q.AvgArity = float64(q.MaxArity)
	}
	return q
}

func clampMin(x, lo int) int {
	if x < lo {
		return lo
	}
	return x
}

// Profiles returns the ten Table II dataset profiles at paper scale. Use
// Scaled to shrink them to experiment budgets.
func Profiles() []Profile {
	ps := []Profile{
		{Name: "HC", Description: "house committees", PaperVertices: 1290, PaperEdges: 331,
			NumLabels: 2, MaxArity: 81, AvgArity: 34.8, LabelSkew: 0.4, DegreeSkew: 0.5},
		{Name: "MA", Description: "MathOverflow answers", PaperVertices: 73851, PaperEdges: 5444,
			NumLabels: 1456, MaxArity: 1784, AvgArity: 24.2, LabelSkew: 1.0, DegreeSkew: 0.6},
		{Name: "CH", Description: "contact high school", PaperVertices: 327, PaperEdges: 7818,
			NumLabels: 9, MaxArity: 5, AvgArity: 2.3, LabelSkew: 0.3, DegreeSkew: 0.5},
		{Name: "CP", Description: "contact primary school", PaperVertices: 242, PaperEdges: 12704,
			NumLabels: 11, MaxArity: 5, AvgArity: 2.4, LabelSkew: 0.3, DegreeSkew: 0.5},
		{Name: "SB", Description: "senate bills", PaperVertices: 294, PaperEdges: 20584,
			NumLabels: 2, MaxArity: 99, AvgArity: 8.0, LabelSkew: 0.2, DegreeSkew: 0.7},
		{Name: "HB", Description: "house bills", PaperVertices: 1494, PaperEdges: 52960,
			NumLabels: 2, MaxArity: 399, AvgArity: 20.5, LabelSkew: 0.2, DegreeSkew: 0.7},
		{Name: "WT", Description: "Walmart trips", PaperVertices: 88860, PaperEdges: 65507,
			NumLabels: 11, MaxArity: 25, AvgArity: 6.6, LabelSkew: 0.8, DegreeSkew: 0.6},
		{Name: "TC", Description: "Trivago clicks", PaperVertices: 172738, PaperEdges: 212483,
			NumLabels: 160, MaxArity: 85, AvgArity: 4.1, LabelSkew: 1.0, DegreeSkew: 0.6},
		{Name: "SA", Description: "StackOverflow answers", PaperVertices: 15211989, PaperEdges: 1103193,
			NumLabels: 56502, MaxArity: 61315, AvgArity: 23.7, LabelSkew: 1.1, DegreeSkew: 0.7},
		{Name: "AR", Description: "Amazon reviews", PaperVertices: 2268264, PaperEdges: 4239108,
			NumLabels: 29, MaxArity: 9350, AvgArity: 17.1, LabelSkew: 0.7, DegreeSkew: 0.8},
	}
	for i := range ps {
		ps[i].NumVertices = ps[i].PaperVertices
		ps[i].NumEdges = ps[i].PaperEdges
	}
	return ps
}

// ProfileByName returns the named profile, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate builds a hypergraph realising the profile. The builder removes
// duplicate hyperedges, so the result can have slightly fewer edges than
// requested; Generate over-produces by a small factor to compensate, then
// truncation keeps determinism.
func Generate(p Profile, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	// A stable dictionary (label i named "Li") so serialised datasets and
	// queries can be re-associated by name (hgio.AlignLabels).
	dict := hypergraph.NewDict()
	for i := 0; i < p.NumLabels; i++ {
		dict.Intern(fmt.Sprintf("L%d", i))
	}
	b := hypergraph.NewBuilder().WithDicts(dict, nil)

	// Vertex labels: Zipf over NumLabels. rand.Zipf requires s > 1; for
	// gentler skews use a power-weight table instead.
	labelOf := makeLabelSampler(rng, p.NumLabels, p.LabelSkew)
	for i := 0; i < p.NumVertices; i++ {
		b.AddVertex(labelOf())
	}

	// Arity distribution: shifted geometric with mean AvgArity capped at
	// MaxArity, plus occasional heavy edges so a_max is actually realised.
	minArity := 1
	if p.AvgArity >= 2 {
		minArity = 2
	}
	mean := p.AvgArity
	if mean < float64(minArity) {
		mean = float64(minArity)
	}
	geoP := 1.0 / (mean - float64(minArity) + 1.0)

	// Preferential attachment pool: vertices appear once per incidence.
	pool := make([]uint32, 0, int(float64(p.NumEdges)*p.AvgArity))

	drawVertex := func() uint32 {
		if len(pool) > 0 && rng.Float64() < p.DegreeSkew {
			return pool[rng.Intn(len(pool))]
		}
		return uint32(rng.Intn(p.NumVertices))
	}

	redundancy := p.Redundancy
	if redundancy == 0 {
		redundancy = 0.45
	}

	target := p.NumEdges
	attempts := target + target/8 + 8
	edge := make([]uint32, 0, p.MaxArity)
	var history [][]uint32 // kept edges, source pool for mutations
	made := 0
	for i := 0; i < attempts && made < target; i++ {
		edge = edge[:0]
		seen := make(map[uint32]bool, 8)
		if len(history) > 0 && rng.Float64() < redundancy {
			// Mutate an existing hyperedge: keep most members, resample
			// at least one (so the mutant is almost never a duplicate).
			// Mutants often share the template's signature (labels are
			// skewed), creating the same-signature near-duplicates that
			// real hypergraphs are full of.
			tpl := history[rng.Intn(len(history))]
			drop := len(tpl) / 4
			if drop < 1 {
				drop = 1
			}
			start := rng.Intn(len(tpl)) // drop a random contiguous chunk
			dropped := make(map[uint32]bool, drop)
			for k := 0; k < drop; k++ {
				dropped[tpl[(start+k)%len(tpl)]] = true
			}
			for _, v := range tpl {
				if !dropped[v] {
					seen[v] = true
					edge = append(edge, v)
				}
			}
			want := len(tpl)
			for tries := 0; len(edge) < want && tries < 8*want; tries++ {
				v := drawVertex()
				if !seen[v] && !dropped[v] {
					seen[v] = true
					edge = append(edge, v)
				}
			}
		} else {
			arity := minArity
			for arity < p.MaxArity && rng.Float64() > geoP {
				arity++
			}
			// One in ~200 edges stretches toward a_max to realise the tail.
			if p.MaxArity > 4*int(mean) && rng.Intn(200) == 0 {
				arity = p.MaxArity/2 + rng.Intn(p.MaxArity/2+1)
			}
			if arity > p.NumVertices {
				arity = p.NumVertices
			}
			for tries := 0; len(edge) < arity && tries < 8*arity; tries++ {
				v := drawVertex()
				if !seen[v] {
					seen[v] = true
					edge = append(edge, v)
				}
			}
		}
		if len(edge) == 0 {
			continue
		}
		b.AddEdge(edge...)
		history = append(history, append([]uint32(nil), edge...))
		for _, v := range edge {
			pool = append(pool, v)
		}
		made++
	}
	return b.MustBuild()
}

// makeLabelSampler returns a sampler over [0, n) with power-law weights
// (i+1)^-s, handling s <= 1 where rand.Zipf is unusable.
func makeLabelSampler(rng *rand.Rand, n int, s float64) func() uint32 {
	if n <= 1 {
		return func() uint32 { return 0 }
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	return func() uint32 {
		x := rng.Float64() * sum
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}
}
