package datagen_test

import (
	"testing"

	"hgmatch/internal/core"
	"hgmatch/internal/datagen"
	"hgmatch/internal/engine"
	"hgmatch/internal/hypergraph"
)

func TestProfilesMatchTable2(t *testing.T) {
	ps := datagen.Profiles()
	if len(ps) != 10 {
		t.Fatalf("%d profiles, want 10", len(ps))
	}
	want := map[string]struct {
		v, e, labels, amax int
		avg                float64
	}{
		"HC": {1290, 331, 2, 81, 34.8},
		"MA": {73851, 5444, 1456, 1784, 24.2},
		"CH": {327, 7818, 9, 5, 2.3},
		"CP": {242, 12704, 11, 5, 2.4},
		"SB": {294, 20584, 2, 99, 8.0},
		"HB": {1494, 52960, 2, 399, 20.5},
		"WT": {88860, 65507, 11, 25, 6.6},
		"TC": {172738, 212483, 160, 85, 4.1},
		"SA": {15211989, 1103193, 56502, 61315, 23.7},
		"AR": {2268264, 4239108, 29, 9350, 17.1},
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.PaperVertices != w.v || p.PaperEdges != w.e || p.NumLabels != w.labels ||
			p.MaxArity != w.amax || p.AvgArity != w.avg {
			t.Errorf("%s: profile %+v does not match Table II %+v", p.Name, p, w)
		}
	}
	if _, ok := datagen.ProfileByName("AR"); !ok {
		t.Error("ProfileByName(AR) failed")
	}
	if _, ok := datagen.ProfileByName("nope"); ok {
		t.Error("ProfileByName(nope) succeeded")
	}
}

func TestScaled(t *testing.T) {
	p, _ := datagen.ProfileByName("AR")
	s := p.Scaled(0.001)
	if s.NumVertices >= p.NumVertices || s.NumEdges >= p.NumEdges {
		t.Errorf("scaling did not shrink: %+v", s)
	}
	if s.NumLabels > s.NumVertices || s.MaxArity > s.NumVertices {
		t.Errorf("scaled constraints violated: %+v", s)
	}
	tiny := p.Scaled(0.0000001)
	if tiny.NumVertices < 8 || tiny.NumEdges < 8 {
		t.Errorf("minimum floor not applied: %+v", tiny)
	}
}

func TestGenerateShape(t *testing.T) {
	for _, name := range []string{"HC", "CH", "SB", "WT"} {
		p, _ := datagen.ProfileByName(name)
		s := p.Scaled(0.2)
		h := datagen.Generate(s, 1)
		if err := h.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.NumVertices() != s.NumVertices {
			t.Errorf("%s: vertices %d, want %d", name, h.NumVertices(), s.NumVertices)
		}
		// Deduplication may remove a few edges; demand at least 80%.
		if h.NumEdges() < s.NumEdges*8/10 {
			t.Errorf("%s: edges %d, want >= 80%% of %d", name, h.NumEdges(), s.NumEdges)
		}
		if h.NumLabels() > s.NumLabels {
			t.Errorf("%s: labels %d > %d", name, h.NumLabels(), s.NumLabels)
		}
		if h.MaxArity() > s.MaxArity {
			t.Errorf("%s: max arity %d > %d", name, h.MaxArity(), s.MaxArity)
		}
		// Average arity within a loose factor of the profile (generation
		// is stochastic).
		if h.AvgArity() < s.AvgArity/3 || h.AvgArity() > s.AvgArity*3 {
			t.Errorf("%s: avg arity %.2f, profile %.2f", name, h.AvgArity(), s.AvgArity)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := datagen.ProfileByName("CH")
	s := p.Scaled(0.3)
	a := datagen.Generate(s, 42)
	b := datagen.Generate(s, 42)
	if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
		t.Fatal("same seed produced different graphs")
	}
	for e := 0; e < a.NumEdges(); e++ {
		ea, eb := a.Edge(uint32(e)), b.Edge(uint32(e))
		if len(ea) != len(eb) {
			t.Fatal("same seed produced different edges")
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatal("same seed produced different edges")
			}
		}
	}
	c := datagen.Generate(s, 43)
	same := c.NumEdges() == a.NumEdges()
	if same {
		diff := false
		for e := 0; e < a.NumEdges() && !diff; e++ {
			ea, ec := a.Edge(uint32(e)), c.Edge(uint32(e))
			if len(ea) != len(ec) {
				diff = true
				break
			}
			for i := range ea {
				if ea[i] != ec[i] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestArityOrderingAcrossProfiles(t *testing.T) {
	// The qualitative driver of Fig. 8: HC/HB are high-arity, CH/CP are
	// low-arity. The generated graphs must preserve that ordering.
	gen := func(name string) *hypergraph.Hypergraph {
		p, _ := datagen.ProfileByName(name)
		return datagen.Generate(p.Scaled(0.1), 7)
	}
	hc, ch := gen("HC"), gen("CH")
	if hc.AvgArity() <= ch.AvgArity() {
		t.Errorf("HC avg arity %.1f should exceed CH %.1f", hc.AvgArity(), ch.AvgArity())
	}
}

func TestKBCaseStudy(t *testing.T) {
	cfg := datagen.DefaultKBConfig()
	kb := datagen.GenerateKB(cfg, 11)
	if err := kb.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if kb.Dict.Name(kb.Player) != "Player" {
		t.Error("label dictionary broken")
	}

	// Query 1 must find at least the planted transfers (each planted pair
	// yields 2 ordered embeddings; background facts may add more).
	q1 := kb.Query1()
	p1, err := core.NewPlan(q1, kb.Graph)
	if err != nil {
		t.Fatal(err)
	}
	r1 := engine.Run(p1, engine.Options{Workers: 2})
	if r1.Embeddings < 2*uint64(cfg.PlantedTransfers) {
		t.Errorf("query1 found %d embeddings, planted %d transfers", r1.Embeddings, cfg.PlantedTransfers)
	}

	q2 := kb.Query2()
	p2, err := core.NewPlan(q2, kb.Graph)
	if err != nil {
		t.Fatal(err)
	}
	r2 := engine.Run(p2, engine.Options{Workers: 2})
	if r2.Embeddings < 2*uint64(cfg.PlantedRecasts) {
		t.Errorf("query2 found %d embeddings, planted %d recasts", r2.Embeddings, cfg.PlantedRecasts)
	}
}

func TestKBDeterminism(t *testing.T) {
	a := datagen.GenerateKB(datagen.DefaultKBConfig(), 5)
	b := datagen.GenerateKB(datagen.DefaultKBConfig(), 5)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Error("KB generation not deterministic")
	}
}
