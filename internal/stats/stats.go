// Package stats provides the small statistical helpers the experiment
// harness needs: box-plot five-number summaries (the paper's Fig. 6),
// means, geometric means (for "average speedup" claims), and byte/duration
// formatting for table output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// FiveNum is a box-plot five-number summary.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Summarize computes the five-number summary of xs (N=0 summary for empty
// input). Quartiles use linear interpolation between order statistics.
func Summarize(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return FiveNum{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.50),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
		N:      len(s),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g (n=%d)",
		f.Min, f.Q1, f.Median, f.Q3, f.Max, f.N)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; zero and negative
// entries are skipped. Used for average speedup factors, matching how
// "average speedup of N orders of magnitude" is computed across queries.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Speedup returns base/target as a factor, treating non-positive targets
// as missing (0).
func Speedup(base, target time.Duration) float64 {
	if target <= 0 || base <= 0 {
		return 0
	}
	return float64(base) / float64(target)
}

// FormatBytes renders a byte count with binary units, e.g. "1.5MiB".
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatCount renders large counts compactly, e.g. "3.9e10" above a
// million, plain integers below.
func FormatCount(n uint64) string {
	if n < 1_000_000 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%.3g", float64(n))
}

// FormatDuration renders durations with 3 significant figures in natural
// units (µs/ms/s), matching the paper's time-cost axes.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.3gµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3gs", d.Seconds())
	}
}

// Histogram buckets xs into log10 bins [10^lo, 10^hi); used to draw the
// paper's log-scale distribution plots as text.
func Histogram(xs []float64, bins int) []int {
	if len(xs) == 0 || bins <= 0 {
		return nil
	}
	counts := make([]int, bins)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		counts[0] = len(xs)
		return counts
	}
	for _, x := range xs {
		b := int(float64(bins) * (x - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}
