package stats_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hgmatch/internal/stats"
)

func TestSummarize(t *testing.T) {
	f := stats.Summarize([]float64{1, 2, 3, 4, 5})
	if f.Min != 1 || f.Max != 5 || f.Median != 3 || f.Q1 != 2 || f.Q3 != 4 || f.N != 5 {
		t.Errorf("Summarize = %+v", f)
	}
	if z := stats.Summarize(nil); z.N != 0 {
		t.Errorf("empty summary %+v", z)
	}
	one := stats.Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Errorf("singleton summary %+v", one)
	}
}

func TestSummarizeOrderingInvariant(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		s := stats.Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeans(t *testing.T) {
	if m := stats.Mean([]float64{2, 4}); m != 3 {
		t.Errorf("Mean = %f", m)
	}
	if m := stats.Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %f", m)
	}
	if g := stats.GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean = %f", g)
	}
	if g := stats.GeoMean([]float64{0, -5}); g != 0 {
		t.Errorf("GeoMean(non-positive) = %f", g)
	}
}

func TestSpeedup(t *testing.T) {
	if s := stats.Speedup(10*time.Second, time.Second); s != 10 {
		t.Errorf("Speedup = %f", s)
	}
	if s := stats.Speedup(time.Second, 0); s != 0 {
		t.Errorf("Speedup(zero target) = %f", s)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KiB",
		1 << 20: "1.0MiB",
	}
	for n, want := range cases {
		if got := stats.FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
	if got := stats.FormatCount(999); got != "999" {
		t.Errorf("FormatCount small = %q", got)
	}
	if got := stats.FormatCount(38_600_000_000); got != "3.86e+10" {
		t.Errorf("FormatCount big = %q", got)
	}
	if got := stats.FormatDuration(500 * time.Nanosecond); got != "500ns" {
		t.Errorf("FormatDuration ns = %q", got)
	}
	if got := stats.FormatDuration(2500 * time.Microsecond); got != "2.5ms" {
		t.Errorf("FormatDuration ms = %q", got)
	}
	if got := stats.FormatDuration(90 * time.Second); got != "90s" {
		t.Errorf("FormatDuration s = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	h := stats.Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 10 || len(h) != 5 {
		t.Errorf("Histogram = %v", h)
	}
	if h := stats.Histogram([]float64{3, 3, 3}, 4); h[0] != 3 {
		t.Errorf("constant histogram = %v", h)
	}
	if h := stats.Histogram(nil, 3); h != nil {
		t.Errorf("empty histogram = %v", h)
	}
}
