// Package experiments drives the reproduction of every table and figure in
// the paper's evaluation (§VII): Table II (datasets), Table III/Fig. 6
// (query workload), Fig. 7 (index building), Fig. 8/Table IV (single-thread
// comparison and completion ratios), Fig. 9 (candidate filtering), Fig. 10
// (scalability), Fig. 11 (scheduler memory), Fig. 12 (work stealing) and
// Fig. 13 (JF17K case study).
//
// Datasets are calibrated synthetic stand-ins (internal/datagen) scaled by
// Config.Scale; EXPERIMENTS.md records how the measured shapes relate to
// the paper's absolute numbers.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hgmatch/internal/bipartite"
	"hgmatch/internal/datagen"
	"hgmatch/internal/hypergraph"
	"hgmatch/internal/querygen"
)

// Config parameterises a reproduction run.
type Config struct {
	// Scale multiplies each Table II dataset's |V| and |E|; 1.0 is paper
	// scale (infeasible offline for SA/AR), the default 0.01 gives a
	// CI-sized suite that preserves per-dataset shape.
	Scale float64
	// Seed drives dataset generation and query sampling.
	Seed int64
	// QueriesPerSetting is the number of random queries per (dataset,
	// setting); the paper uses 20.
	QueriesPerSetting int
	// Timeout caps each single query run (the paper uses 1 hour; scaled
	// runs use seconds). Timed-out runs count at the timeout, like the
	// paper's treatment of out-of-time queries.
	Timeout time.Duration
	// Workers for parallel experiments.
	Workers int
	// Datasets restricts the dataset list (nil = all ten).
	Datasets []string
	// Settings restricts the query settings (nil = all four).
	Settings []string
	// MaxEmbeddings bounds per-query result counts in counting
	// experiments to keep scaled runs finite (0 = unlimited).
	MaxEmbeddings uint64
	// ParallelDataset selects the data hypergraph for the multi-thread
	// experiments (Exp-4/5/6). The paper uses its largest dataset, AR
	// (the default); scaled runs may prefer a denser stand-in whose q3
	// workloads carry enough embeddings to exercise the scheduler.
	ParallelDataset string
}

// DefaultConfig returns the CI-sized configuration.
func DefaultConfig() Config {
	return Config{
		Scale:             0.01,
		Seed:              1,
		QueriesPerSetting: 20,
		Timeout:           2 * time.Second,
		Workers:           4,
		MaxEmbeddings:     5_000_000,
	}
}

// Suite generates and caches datasets and query workloads.
type Suite struct {
	Cfg       Config
	datasets  map[string]*hypergraph.Hypergraph
	queries   map[string][]*hypergraph.Hypergraph // key: dataset/setting
	bipartite map[string]*bipartite.Graph         // cached data-side conversions
}

// NewSuite builds an empty suite; datasets generate lazily.
func NewSuite(cfg Config) *Suite {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.01
	}
	if cfg.QueriesPerSetting <= 0 {
		cfg.QueriesPerSetting = 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	return &Suite{
		Cfg:       cfg,
		datasets:  make(map[string]*hypergraph.Hypergraph),
		queries:   make(map[string][]*hypergraph.Hypergraph),
		bipartite: make(map[string]*bipartite.Graph),
	}
}

// DatasetNames returns the selected dataset names in Table II order.
func (s *Suite) DatasetNames() []string {
	var names []string
	for _, p := range datagen.Profiles() {
		if s.selectedDataset(p.Name) {
			names = append(names, p.Name)
		}
	}
	return names
}

func (s *Suite) selectedDataset(name string) bool {
	if len(s.Cfg.Datasets) == 0 {
		return true
	}
	for _, d := range s.Cfg.Datasets {
		if strings.EqualFold(d, name) {
			return true
		}
	}
	return false
}

// SettingNames returns the selected query settings in Table III order.
func (s *Suite) SettingNames() []string {
	var names []string
	for _, st := range querygen.Settings() {
		if len(s.Cfg.Settings) == 0 {
			names = append(names, st.Name)
			continue
		}
		for _, sel := range s.Cfg.Settings {
			if strings.EqualFold(sel, st.Name) {
				names = append(names, st.Name)
				break
			}
		}
	}
	return names
}

// Dataset returns (generating on first use) the named dataset at the
// configured scale.
func (s *Suite) Dataset(name string) *hypergraph.Hypergraph {
	if h, ok := s.datasets[name]; ok {
		return h
	}
	p, ok := datagen.ProfileByName(name)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
	h := datagen.Generate(p.Scaled(s.Cfg.Scale), s.Cfg.Seed+int64(len(name))*7919)
	s.datasets[name] = h
	return h
}

// Queries returns (sampling on first use) the query workload for a
// (dataset, setting) pair: Cfg.QueriesPerSetting deterministic random-walk
// queries.
func (s *Suite) Queries(dataset, setting string) []*hypergraph.Hypergraph {
	key := dataset + "/" + setting
	if qs, ok := s.queries[key]; ok {
		return qs
	}
	st, ok := querygen.SettingByName(setting)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown setting %q", setting))
	}
	h := s.Dataset(dataset)
	rng := rand.New(rand.NewSource(s.Cfg.Seed*1_000_003 + int64(len(key))))
	raw := querygen.SampleMany(rng, h, st, s.Cfg.QueriesPerSetting)
	qs := raw[:0]
	for _, q := range raw {
		if q != nil {
			qs = append(qs, q)
		}
	}
	s.queries[key] = qs
	return qs
}

// table is a tiny text-table renderer for paper-style output.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
