package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"hgmatch/internal/core"
	"hgmatch/internal/engine"
	"hgmatch/internal/hypergraph"
	"hgmatch/internal/stats"
)

// parallelDataset returns the data hypergraph name for the multi-thread
// experiments; the paper uses its largest dataset AR with q3 queries.
func (s *Suite) parallelDataset() string {
	if s.Cfg.ParallelDataset != "" {
		return s.Cfg.ParallelDataset
	}
	return "AR"
}

// Fig10Row is one thread-count measurement of Exp-4.
type Fig10Row struct {
	Query   string
	Threads int
	Elapsed time.Duration
	Speedup float64 // t=1 elapsed / this elapsed
	// WorkBalance is max/mean of per-worker busy time (1.0 = perfect);
	// reported because wall-clock speedup cannot materialise on machines
	// with fewer cores than workers (DESIGN.md substitution #6).
	WorkBalance float64
}

// Fig10 reproduces Exp-4: scalability of HGMatch when varying the number
// of threads, on the two heaviest q3 queries of the AR-profile dataset.
func (s *Suite) Fig10(threadCounts []int) ([]Fig10Row, string) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 16, 20, 40, 60}
	}
	h := s.Dataset(s.parallelDataset())
	queries := s.heaviestQueries(h, 2)

	var rows []Fig10Row
	t := &table{header: []string{"Query", "t", "Time", "Speedup", "Busy max/mean", "(GOMAXPROCS)"}}
	for qi, q := range queries {
		name := fmt.Sprintf("q3^%d", qi+1)
		p, err := core.NewPlan(q, h)
		if err != nil {
			continue
		}
		var base time.Duration
		for _, tc := range threadCounts {
			res := engine.Run(p, engine.Options{Workers: tc, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})
			if tc == threadCounts[0] {
				base = res.Elapsed
			}
			row := Fig10Row{
				Query: name, Threads: tc, Elapsed: res.Elapsed,
				Speedup:     stats.Speedup(base, res.Elapsed),
				WorkBalance: busyBalance(res.Workers),
			}
			rows = append(rows, row)
			t.add(name, fmt.Sprintf("%d", tc), stats.FormatDuration(res.Elapsed),
				fmt.Sprintf("%.2fx", row.Speedup), fmt.Sprintf("%.2f", row.WorkBalance),
				fmt.Sprintf("%d", runtime.GOMAXPROCS(0)))
		}
	}
	return rows, fmt.Sprintf("Fig. 10 — Exp-4 scalability vs number of threads (%s-profile, 2 heavy q3 queries)\n", s.parallelDataset()) + t.String()
}

// heaviestQueries picks the n q3 queries with the largest embedding counts
// (the paper selects two q3 queries with ~3.86e10 and ~2.53e8 results).
func (s *Suite) heaviestQueries(h *hypergraph.Hypergraph, n int) []*hypergraph.Hypergraph {
	qs := s.Queries(s.parallelDataset(), "q3")
	type scored struct {
		q *hypergraph.Hypergraph
		n uint64
	}
	var all []scored
	for _, q := range qs {
		all = append(all, scored{q, s.countEmbeddings(q, h)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	var out []*hypergraph.Hypergraph
	for i := 0; i < n && i < len(all); i++ {
		out = append(out, all[i].q)
	}
	return out
}

func busyBalance(ws []engine.WorkerStats) float64 {
	var busy []float64
	for _, w := range ws {
		if w.Tasks > 0 || w.BusyTime > 0 {
			busy = append(busy, w.BusyTime.Seconds())
		}
	}
	if len(busy) == 0 {
		return 1
	}
	mean := stats.Mean(busy)
	if mean == 0 {
		return 1
	}
	maxv := busy[0]
	for _, b := range busy {
		if b > maxv {
			maxv = b
		}
	}
	return maxv / mean
}

// Fig11Row is one query's memory measurement of Exp-5.
type Fig11Row struct {
	QueryIndex int
	Embeddings uint64
	TaskPeak   int64 // bytes, task scheduler
	BFSPeak    int64 // bytes, BFS scheduler
}

// Fig11 reproduces Exp-5: memory of the task-based scheduler vs BFS-style
// scheduling over the 20 q3 queries. The engine reports its own
// high-water accounting (peak live tasks / peak materialised level × task
// size), which is the quantity Theorem VI.1 bounds.
func (s *Suite) Fig11() ([]Fig11Row, string) {
	h := s.Dataset(s.parallelDataset())
	queries := s.Queries(s.parallelDataset(), "q3")
	var rows []Fig11Row
	t := &table{header: []string{"Query", "#Embeddings", "Task peak", "BFS peak", "BFS/Task"}}
	for i, q := range queries {
		p, err := core.NewPlan(q, h)
		if err != nil {
			continue
		}
		task := engine.Run(p, engine.Options{Workers: s.Cfg.Workers, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})
		bfs := engine.Run(p, engine.Options{Workers: s.Cfg.Workers, Scheduler: engine.SchedulerBFS, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})
		row := Fig11Row{QueryIndex: i, Embeddings: task.Embeddings, TaskPeak: task.PeakTaskBytes, BFSPeak: bfs.PeakTaskBytes}
		rows = append(rows, row)
		ratio := "-"
		if row.TaskPeak > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(row.BFSPeak)/float64(row.TaskPeak))
		}
		t.add(fmt.Sprintf("%d", i+1), stats.FormatCount(row.Embeddings),
			stats.FormatBytes(row.TaskPeak), stats.FormatBytes(row.BFSPeak), ratio)
	}
	return rows, "Fig. 11 — Exp-5 task-based scheduler vs BFS memory (engine high-water accounting)\n" + t.String()
}

// Fig12Row is one worker's busy time of Exp-6, with and without stealing.
type Fig12Row struct {
	Worker       int
	WithStealing time.Duration
	NoStealing   time.Duration
	StealsDone   uint64
}

// Fig12 reproduces Exp-6: per-worker running time with dynamic work
// stealing vs static assignment of first-matched hyperedges
// (HGMatch-NOSTL). Busy times are sorted ascending per the paper's
// presentation.
func (s *Suite) Fig12(workers int) ([]Fig12Row, string) {
	if workers <= 0 {
		workers = 20
	}
	h := s.Dataset(s.parallelDataset())
	queries := s.heaviestQueries(h, 2)
	if len(queries) == 0 {
		return nil, "Fig. 12 — no queries available"
	}
	q := queries[len(queries)-1] // the paper uses q3^2
	p, err := core.NewPlan(q, h)
	if err != nil {
		return nil, "Fig. 12 — plan failed: " + err.Error()
	}
	with := engine.Run(p, engine.Options{Workers: workers, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})
	without := engine.Run(p, engine.Options{Workers: workers, DisableStealing: true, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})

	wb := make([]time.Duration, 0, workers)
	nb := make([]time.Duration, 0, workers)
	steals := with.TotalSteals()
	for _, ws := range with.Workers {
		wb = append(wb, ws.BusyTime)
	}
	for _, ws := range without.Workers {
		nb = append(nb, ws.BusyTime)
	}
	sort.Slice(wb, func(i, j int) bool { return wb[i] < wb[j] })
	sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })

	var rows []Fig12Row
	t := &table{header: []string{"Worker", "HGMatch busy", "HGMatch-NOSTL busy"}}
	for i := 0; i < workers; i++ {
		row := Fig12Row{Worker: i + 1, WithStealing: wb[i], NoStealing: nb[i], StealsDone: steals}
		rows = append(rows, row)
		t.add(fmt.Sprintf("%d", i+1), stats.FormatDuration(wb[i]), stats.FormatDuration(nb[i]))
	}
	summary := fmt.Sprintf(
		"balance (max/mean busy): HGMatch %.2f, HGMatch-NOSTL %.2f; total steals %d; counts equal: %v\n",
		busyBalance(with.Workers), busyBalance(without.Workers), steals,
		with.Embeddings == without.Embeddings)
	return rows, "Fig. 12 — Exp-6 work stealing load balance (per-worker busy time, sorted)\n" + summary + t.String()
}
