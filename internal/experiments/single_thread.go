package experiments

import (
	"fmt"
	"time"

	"hgmatch/internal/baseline"
	"hgmatch/internal/bipartite"
	"hgmatch/internal/core"
	"hgmatch/internal/datagen"
	"hgmatch/internal/engine"
	"hgmatch/internal/hypergraph"
	"hgmatch/internal/stats"
)

// Table2Row is one row of Table II (plus the generated counterpart).
type Table2Row struct {
	Name                     string
	Vertices, Edges, Labels  int
	MaxArity                 int
	AvgArity                 float64
	IndexBytes, GraphBytes   int
	PaperVertices, PaperEdge int
}

// Table2 reproduces Table II over the scaled datasets.
func (s *Suite) Table2() ([]Table2Row, string) {
	var rows []Table2Row
	t := &table{header: []string{"Dataset", "|V|", "|E|", "|Σ|", "amax", "a", "|Index|", "paper |V|", "paper |E|"}}
	for _, name := range s.DatasetNames() {
		h := s.Dataset(name)
		st := hypergraph.ComputeStats(h)
		p, _ := datagen.ProfileByName(name)
		row := Table2Row{
			Name: name, Vertices: st.NumVertices, Edges: st.NumEdges,
			Labels: st.NumLabels, MaxArity: st.MaxArity, AvgArity: st.AvgArity,
			IndexBytes: st.IndexBytes, GraphBytes: st.GraphBytes,
			PaperVertices: p.PaperVertices, PaperEdge: p.PaperEdges,
		}
		rows = append(rows, row)
		t.add(name,
			fmt.Sprintf("%d", row.Vertices), fmt.Sprintf("%d", row.Edges),
			fmt.Sprintf("%d", row.Labels), fmt.Sprintf("%d", row.MaxArity),
			fmt.Sprintf("%.1f", row.AvgArity), stats.FormatBytes(int64(row.IndexBytes)),
			fmt.Sprintf("%d", row.PaperVertices), fmt.Sprintf("%d", row.PaperEdge))
	}
	return rows, "Table II — dataset statistics (scaled synthetic stand-ins)\n" + t.String()
}

// Fig6Row summarises embedding-count distributions for one (dataset,
// setting) cell of Fig. 6.
type Fig6Row struct {
	Dataset, Setting string
	Counts           stats.FiveNum
	Queries          int
}

// Fig6 reproduces the embedding-count box plots: for every dataset and
// query setting, the distribution of result counts over the sampled
// workload.
func (s *Suite) Fig6() ([]Fig6Row, string) {
	var rows []Fig6Row
	t := &table{header: []string{"Dataset", "Setting", "n", "min", "q1", "median", "q3", "max"}}
	for _, ds := range s.DatasetNames() {
		h := s.Dataset(ds)
		for _, set := range s.SettingNames() {
			var counts []float64
			for _, q := range s.Queries(ds, set) {
				n := s.countEmbeddings(q, h)
				counts = append(counts, float64(n))
			}
			f := stats.Summarize(counts)
			rows = append(rows, Fig6Row{Dataset: ds, Setting: set, Counts: f, Queries: len(counts)})
			t.add(ds, set, fmt.Sprintf("%d", f.N),
				stats.FormatCount(uint64(f.Min)), stats.FormatCount(uint64(f.Q1)),
				stats.FormatCount(uint64(f.Median)), stats.FormatCount(uint64(f.Q3)),
				stats.FormatCount(uint64(f.Max)))
		}
	}
	return rows, "Fig. 6 — number-of-embeddings distributions (box-plot five-number summaries)\n" + t.String()
}

func (s *Suite) countEmbeddings(q, h *hypergraph.Hypergraph) uint64 {
	p, err := core.NewPlan(q, h)
	if err != nil {
		return 0
	}
	res := engine.Run(p, engine.Options{
		Workers: s.Cfg.Workers,
		Limit:   s.Cfg.MaxEmbeddings,
		Timeout: s.Cfg.Timeout,
	})
	return res.Embeddings
}

// Fig7Row is one dataset's index-building measurement.
type Fig7Row struct {
	Dataset    string
	BuildTime  time.Duration
	GraphBytes int
	IndexBytes int
}

// Fig7 reproduces Exp-1: offline index building time, graph size and index
// size. Building is re-done from raw edges to time the full preprocessing.
func (s *Suite) Fig7() ([]Fig7Row, string) {
	var rows []Fig7Row
	t := &table{header: []string{"Dataset", "Index Time", "Graph Size", "Index Size"}}
	for _, name := range s.DatasetNames() {
		h := s.Dataset(name)
		// Rebuild from raw hyperedges to measure preprocessing honestly.
		labels := append([]hypergraph.Label(nil), h.Labels()...)
		edges := make([][]uint32, h.NumEdges())
		for e := 0; e < h.NumEdges(); e++ {
			edges[e] = append([]uint32(nil), h.Edge(uint32(e))...)
		}
		t0 := time.Now()
		rebuilt, err := hypergraph.FromEdges(labels, edges)
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		st := hypergraph.ComputeStats(rebuilt)
		rows = append(rows, Fig7Row{Dataset: name, BuildTime: dt, GraphBytes: st.GraphBytes, IndexBytes: st.IndexBytes})
		t.add(name, stats.FormatDuration(dt), stats.FormatBytes(int64(st.GraphBytes)), stats.FormatBytes(int64(st.IndexBytes)))
	}
	return rows, "Fig. 7 — Exp-1 index building time and size\n" + t.String()
}

// Methods compared in Fig. 8 / Table IV, in the paper's presentation order.
var Fig8Methods = []string{"RapidMatch", "DAF-H", "CFL-H", "CECI-H", "HGMatch"}

// Fig8Cell is one (dataset, setting, method) measurement.
type Fig8Cell struct {
	Dataset, Setting, Method string
	AvgTime                  time.Duration // timeouts counted at Cfg.Timeout
	Completed, Total         int
}

// Fig8 reproduces Exp-2: single-thread comparison of HGMatch against
// CFL-H, DAF-H, CECI-H and RapidMatch, and Table IV completion ratios.
// Following the paper, the time of a timed-out query is counted as the
// timeout when averaging, and AR is excluded from single-thread runs (the
// suite's dataset filter handles that at the call site).
func (s *Suite) Fig8() ([]Fig8Cell, string, string) {
	var cells []Fig8Cell
	t := &table{header: append([]string{"Dataset", "Setting"}, Fig8Methods...)}
	type key struct{ ds, m string }
	completed := map[key]int{}
	total := map[key]int{}

	for _, ds := range s.DatasetNames() {
		h := s.Dataset(ds)
		for _, set := range s.SettingNames() {
			queries := s.Queries(ds, set)
			times := map[string][]float64{}
			comp := map[string]int{}
			for _, q := range queries {
				for _, m := range Fig8Methods {
					dt, ok := s.runSingle(m, ds, q, h)
					times[m] = append(times[m], dt.Seconds())
					if ok {
						comp[m]++
					}
				}
			}
			row := []string{ds, set}
			for _, m := range Fig8Methods {
				avg := time.Duration(stats.Mean(times[m]) * float64(time.Second))
				cells = append(cells, Fig8Cell{
					Dataset: ds, Setting: set, Method: m,
					AvgTime: avg, Completed: comp[m], Total: len(queries),
				})
				completed[key{ds, m}] += comp[m]
				total[key{ds, m}] += len(queries)
				row = append(row, stats.FormatDuration(avg))
			}
			t.add(row...)
		}
	}

	// Table IV: completion ratios per dataset and method.
	t4 := &table{header: append([]string{"Algorithm"}, append(s.DatasetNames(), "Total")...)}
	for _, m := range Fig8Methods {
		row := []string{m}
		compT, totT := 0, 0
		for _, ds := range s.DatasetNames() {
			c, n := completed[key{ds, m}], total[key{ds, m}]
			compT += c
			totT += n
			if n == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%d%%", 100*c/n))
			}
		}
		if totT > 0 {
			row = append(row, fmt.Sprintf("%d%%", 100*compT/totT))
		} else {
			row = append(row, "-")
		}
		t4.add(row...)
	}
	return cells,
		"Fig. 8 — Exp-2 single-thread comparison (average elapsed time; timeouts count as the limit)\n" + t.String(),
		"Table IV — query completion ratio (single-thread)\n" + t4.String()
}

// bipartiteOf returns (converting once) the dataset's bipartite form; the
// conversion is offline preprocessing for the RapidMatch baseline, like
// HGMatch's index build, so it is cached and excluded from query timing.
func (s *Suite) bipartiteOf(name string) *bipartite.Graph {
	if g, ok := s.bipartite[name]; ok {
		return g
	}
	g := bipartite.Convert(s.Dataset(name))
	s.bipartite[name] = g
	return g
}

// runSingle executes one query with one method single-threaded under the
// suite timeout; ok reports completion within the limit.
func (s *Suite) runSingle(method, ds string, q, h *hypergraph.Hypergraph) (time.Duration, bool) {
	switch method {
	case "HGMatch":
		p, err := core.NewPlan(q, h)
		if err != nil {
			return 0, false
		}
		res := engine.Run(p, engine.Options{Workers: 1, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})
		if res.TimedOut {
			return s.Cfg.Timeout, false
		}
		return res.Elapsed, true
	case "RapidMatch":
		res := bipartite.Match(q, bipartite.Convert(q), s.bipartiteOf(ds),
			bipartite.Options{Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})
		if res.TimedOut {
			return s.Cfg.Timeout, false
		}
		return res.Elapsed, true
	default:
		var alg baseline.Algorithm
		switch method {
		case "CFL-H":
			alg = baseline.CFLH
		case "DAF-H":
			alg = baseline.DAFH
		case "CECI-H":
			alg = baseline.CECIH
		default:
			return 0, false
		}
		res := baseline.Match(q, h, baseline.Options{Algorithm: alg, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings})
		if res.TimedOut {
			return s.Cfg.Timeout, false
		}
		return res.Elapsed, true
	}
}

// Fig9Row aggregates Exp-3 counters for one dataset.
type Fig9Row struct {
	Dataset    string
	Candidates uint64 // Algorithm 4 output
	Filtered   uint64 // after the Observation V.5 check
	Embeddings uint64 // true embeddings
}

// Fig9 reproduces Exp-3: pruning power of candidate generation and
// embedding validation, summed over all queries per dataset. The paper's
// headline: ~97% of Filtered results are true embeddings.
func (s *Suite) Fig9() ([]Fig9Row, string) {
	var rows []Fig9Row
	t := &table{header: []string{"Dataset", "Candidates", "Filtered", "Embeddings", "Filtered→Emb"}}
	for _, ds := range s.DatasetNames() {
		h := s.Dataset(ds)
		var row Fig9Row
		row.Dataset = ds
		for _, set := range s.SettingNames() {
			for _, q := range s.Queries(ds, set) {
				p, err := core.NewPlan(q, h)
				if err != nil {
					continue
				}
				res := engine.Run(p, engine.Options{
					Workers: s.Cfg.Workers, Timeout: s.Cfg.Timeout, Limit: s.Cfg.MaxEmbeddings,
				})
				row.Candidates += res.Counters.Candidates
				row.Filtered += res.Counters.Filtered
				row.Embeddings += res.Embeddings
			}
		}
		rows = append(rows, row)
		ratio := "-"
		if row.Filtered > 0 {
			ratio = fmt.Sprintf("%.0f%%", 100*float64(row.Embeddings)/float64(row.Filtered))
		}
		t.add(ds, stats.FormatCount(row.Candidates), stats.FormatCount(row.Filtered),
			stats.FormatCount(row.Embeddings), ratio)
	}
	return rows, "Fig. 9 — Exp-3 candidate filtering (totals over the query workload)\n" + t.String()
}
