package experiments_test

import (
	"strings"
	"testing"
	"time"

	"hgmatch/internal/experiments"
)

// tinyConfig keeps the full suite runnable in test time.
func tinyConfig() experiments.Config {
	return experiments.Config{
		Scale:             0.004,
		Seed:              1,
		QueriesPerSetting: 3,
		Timeout:           300 * time.Millisecond,
		Workers:           3,
		MaxEmbeddings:     200_000,
		Settings:          []string{"q2", "q3"},
	}
}

func TestTable2(t *testing.T) {
	s := experiments.NewSuite(tinyConfig())
	rows, txt := s.Table2()
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10 datasets", len(rows))
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Edges <= 0 || r.IndexBytes <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if !strings.Contains(txt, "Table II") || !strings.Contains(txt, "AR") {
		t.Errorf("report missing content:\n%s", txt)
	}
}

func TestFig6AndFig9(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"HC", "CH"}
	s := experiments.NewSuite(cfg)
	rows, txt := s.Fig6()
	if len(rows) != 4 { // 2 datasets × 2 settings
		t.Fatalf("%d fig6 rows", len(rows))
	}
	for _, r := range rows {
		if r.Counts.Min < 1 {
			t.Errorf("%s/%s: sampled query with zero embeddings (min %.0f)", r.Dataset, r.Setting, r.Counts.Min)
		}
	}
	if !strings.Contains(txt, "Fig. 6") {
		t.Error("missing header")
	}

	rows9, txt9 := s.Fig9()
	if len(rows9) != 2 {
		t.Fatalf("%d fig9 rows", len(rows9))
	}
	for _, r := range rows9 {
		// Monotone funnel: candidates >= filtered >= embeddings.
		if r.Candidates < r.Filtered || r.Filtered < r.Embeddings {
			t.Errorf("funnel violated: %+v", r)
		}
		if r.Embeddings == 0 {
			t.Errorf("%s: no embeddings at all", r.Dataset)
		}
	}
	if !strings.Contains(txt9, "Fig. 9") {
		t.Error("missing header")
	}
}

func TestFig7(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"SB", "WT"}
	s := experiments.NewSuite(cfg)
	rows, txt := s.Fig7()
	if len(rows) != 2 {
		t.Fatalf("%d fig7 rows", len(rows))
	}
	for _, r := range rows {
		if r.BuildTime <= 0 || r.IndexBytes <= 0 || r.GraphBytes <= 0 {
			t.Errorf("degenerate fig7 row %+v", r)
		}
	}
	if !strings.Contains(txt, "Index Time") {
		t.Error("missing column")
	}
}

func TestFig8AndTable4(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"CH"}
	cfg.Settings = []string{"q2"}
	s := experiments.NewSuite(cfg)
	cells, txt8, txt4 := s.Fig8()
	if len(cells) != len(experiments.Fig8Methods) {
		t.Fatalf("%d cells", len(cells))
	}
	var hgm, slowest time.Duration
	for _, c := range cells {
		if c.Total == 0 {
			t.Fatalf("no queries ran: %+v", c)
		}
		if c.Method == "HGMatch" {
			hgm = c.AvgTime
			if c.Completed != c.Total {
				t.Errorf("HGMatch did not complete all queries: %+v", c)
			}
		}
		if c.AvgTime > slowest {
			slowest = c.AvgTime
		}
	}
	if hgm == 0 || slowest < hgm {
		t.Errorf("timing looks wrong: hgmatch=%v slowest=%v", hgm, slowest)
	}
	if !strings.Contains(txt8, "HGMatch") || !strings.Contains(txt4, "Algorithm") {
		t.Error("reports malformed")
	}
}

func TestFig10(t *testing.T) {
	cfg := tinyConfig()
	s := experiments.NewSuite(cfg)
	rows, txt := s.Fig10([]int{1, 2})
	if len(rows) == 0 {
		t.Fatal("no fig10 rows")
	}
	for _, r := range rows {
		if r.Threads == 1 && r.Speedup != 1 {
			t.Errorf("t=1 speedup = %f", r.Speedup)
		}
	}
	if !strings.Contains(txt, "Fig. 10") {
		t.Error("missing header")
	}
}

func TestFig11(t *testing.T) {
	s := experiments.NewSuite(tinyConfig())
	rows, txt := s.Fig11()
	if len(rows) == 0 {
		t.Fatal("no fig11 rows")
	}
	for _, r := range rows {
		if r.BFSPeak < int64(r.Embeddings/10) && r.Embeddings > 100 {
			t.Errorf("BFS peak suspiciously small: %+v", r)
		}
	}
	if !strings.Contains(txt, "Fig. 11") {
		t.Error("missing header")
	}
}

func TestFig12(t *testing.T) {
	s := experiments.NewSuite(tinyConfig())
	rows, txt := s.Fig12(4)
	if len(rows) != 4 {
		t.Fatalf("%d fig12 rows", len(rows))
	}
	if !strings.Contains(txt, "counts equal: true") {
		t.Errorf("stealing changed results:\n%s", txt)
	}
}

func TestFig13(t *testing.T) {
	s := experiments.NewSuite(tinyConfig())
	res, txt := s.Fig13()
	if res.Query1Count < 2*uint64(res.PlantedQ1) {
		t.Errorf("query1 count %d below planted %d", res.Query1Count, res.PlantedQ1)
	}
	if res.Query2Count < 2*uint64(res.PlantedQ2) {
		t.Errorf("query2 count %d below planted %d", res.Query2Count, res.PlantedQ2)
	}
	if len(res.SampleQ1) == 0 || len(res.SampleQ2) == 0 {
		t.Error("no sample answers rendered")
	}
	if !strings.Contains(txt, "Query 1") || !strings.Contains(txt, "Player") {
		t.Errorf("report malformed:\n%s", txt)
	}
}

func TestSuiteFilters(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"hc", "WT"}
	cfg.Settings = []string{"Q3"}
	s := experiments.NewSuite(cfg)
	ds := s.DatasetNames()
	if len(ds) != 2 || ds[0] != "HC" || ds[1] != "WT" {
		t.Errorf("DatasetNames = %v", ds)
	}
	ss := s.SettingNames()
	if len(ss) != 1 || ss[0] != "q3" {
		t.Errorf("SettingNames = %v", ss)
	}
}

func TestQueriesCachedAndDeterministic(t *testing.T) {
	s := experiments.NewSuite(tinyConfig())
	a := s.Queries("CH", "q2")
	b := s.Queries("CH", "q2")
	if len(a) == 0 {
		t.Fatal("no queries")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("query cache broken")
		}
	}
	s2 := experiments.NewSuite(tinyConfig())
	c := s2.Queries("CH", "q2")
	if len(c) != len(a) || c[0].NumVertices() != a[0].NumVertices() {
		t.Error("query sampling not deterministic across suites")
	}
}
