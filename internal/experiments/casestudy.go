package experiments

import (
	"fmt"
	"strings"

	"hgmatch/internal/core"
	"hgmatch/internal/datagen"
	"hgmatch/internal/engine"
	"hgmatch/internal/hypergraph"
)

// CaseStudyResult reports the §VII-D knowledge-base case study.
type CaseStudyResult struct {
	KBVertices, KBEdges  int
	Query1Count          uint64
	Query2Count          uint64
	SampleQ1, SampleQ2   []string
	PlantedQ1, PlantedQ2 int
}

// Fig13 reproduces the JF17K question-answering case study: query 1
// ("players who represented different teams in different matches") and
// query 2 ("actors who played the same character in a TV show on different
// seasons") over the synthetic typed knowledge base.
func (s *Suite) Fig13() (CaseStudyResult, string) {
	cfg := datagen.DefaultKBConfig()
	kb := datagen.GenerateKB(cfg, s.Cfg.Seed)
	res := CaseStudyResult{
		KBVertices: kb.Graph.NumVertices(),
		KBEdges:    kb.Graph.NumEdges(),
		PlantedQ1:  cfg.PlantedTransfers,
		PlantedQ2:  cfg.PlantedRecasts,
	}

	run := func(q *hypergraph.Hypergraph, samples int) (uint64, []string) {
		p, err := core.NewPlan(q, kb.Graph)
		if err != nil {
			return 0, nil
		}
		var rendered []string
		r := engine.Run(p, engine.Options{
			Workers: s.Cfg.Workers,
			OnEmbedding: func(m []hypergraph.EdgeID) {
				if len(rendered) < samples {
					rendered = append(rendered, renderFacts(kb, m))
				}
			},
		})
		return r.Embeddings, rendered
	}
	res.Query1Count, res.SampleQ1 = run(kb.Query1(), 3)
	res.Query2Count, res.SampleQ2 = run(kb.Query2(), 3)

	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — §VII-D case study on a synthetic JF17K-style knowledge base\n")
	fmt.Fprintf(&b, "KB: %d entities, %d facts\n", res.KBVertices, res.KBEdges)
	fmt.Fprintf(&b, "Query 1 (player, two teams, two matches): %d embeddings (planted %d transfer players)\n",
		res.Query1Count, res.PlantedQ1)
	for _, s := range res.SampleQ1 {
		fmt.Fprintf(&b, "  e.g. %s\n", s)
	}
	fmt.Fprintf(&b, "Query 2 (character/show recast across seasons): %d embeddings (planted %d recasts)\n",
		res.Query2Count, res.PlantedQ2)
	for _, s := range res.SampleQ2 {
		fmt.Fprintf(&b, "  e.g. %s\n", s)
	}
	return res, b.String()
}

// renderFacts pretty-prints one embedding as its list of typed facts.
func renderFacts(kb *datagen.KB, m []hypergraph.EdgeID) string {
	var parts []string
	for _, e := range m {
		var fact []string
		for _, v := range kb.Graph.Edge(e) {
			fact = append(fact, fmt.Sprintf("%s#%d", kb.Dict.Name(kb.Graph.Label(v)), v))
		}
		parts = append(parts, "("+strings.Join(fact, ", ")+")")
	}
	return strings.Join(parts, " + ")
}
