// Package hgtest provides shared fixtures for tests across the repository,
// chiefly the running example of the paper's Fig. 1 and small random
// hypergraph/query pairs for cross-checking engines.
package hgtest

import (
	"math/rand"

	"hgmatch/internal/hypergraph"
)

// Labels of the Fig. 1 example, named as in the paper.
const (
	A uint32 = 0
	B uint32 = 1
	C uint32 = 2
)

// Fig1Data builds the data hypergraph H of the paper's Fig. 1b:
//
//	v0:A v1:C v2:A v3:A v4:B v5:C v6:A
//	e1={v2,v4} e2={v4,v6} e3={v0,v1,v2} e4={v3,v5,v6}
//	e5={v0,v1,v4,v6} e6={v2,v3,v4,v5}
//
// Note: edge IDs in the built graph are 0-based and assigned in insertion
// order, so paper e1 == EdgeID 0, ..., e6 == EdgeID 5.
func Fig1Data() *hypergraph.Hypergraph {
	labels := []uint32{A, C, A, A, B, C, A}
	edges := [][]uint32{
		{2, 4},       // e1
		{4, 6},       // e2
		{0, 1, 2},    // e3
		{3, 5, 6},    // e4
		{0, 1, 4, 6}, // e5
		{2, 3, 4, 5}, // e6
	}
	return hypergraph.MustFromEdges(labels, edges)
}

// Fig1Query builds the query hypergraph q of the paper's Fig. 1a:
//
//	u0:A u1:C u2:A u3:A u4:B
//	eq0={u2,u4} eq1={u0,u1,u2} eq2={u0,u1,u3,u4}
//
// It has exactly two embeddings in Fig1Data: (e1,e3,e5) and (e2,e4,e6).
func Fig1Query() *hypergraph.Hypergraph {
	labels := []uint32{A, C, A, A, B}
	edges := [][]uint32{
		{2, 4},
		{0, 1, 2},
		{0, 1, 3, 4},
	}
	return hypergraph.MustFromEdges(labels, edges)
}

// Fig4PartialQuery builds the partial query q' of the paper's Fig. 4a
// (the embedding-validation counterexample):
//
//	u0:B u1:A u2:A u3:A u4:A u5:A
//	e0={u0,u1,u2} e1={u3,u4,u5} e2={u2,u3,u4}
func Fig4PartialQuery() *hypergraph.Hypergraph {
	labels := []uint32{B, A, A, A, A, A}
	edges := [][]uint32{
		{0, 1, 2},
		{3, 4, 5},
		{2, 3, 4},
	}
	return hypergraph.MustFromEdges(labels, edges)
}

// Fig4PartialEmbedding builds the candidate partial embedding m' of the
// paper's Fig. 4b:
//
//	v0:B v1:A v2:A v3:A v4:A v5:A
//	e0'={v0,v1,v2} e1'={v3,v4,v5} e2'={v1,v2,v3}
//
// m' is NOT a valid embedding of Fig4PartialQuery (the vertex-profile
// multisets differ), which the validation tests assert.
func Fig4PartialEmbedding() *hypergraph.Hypergraph {
	labels := []uint32{B, A, A, A, A, A}
	edges := [][]uint32{
		{0, 1, 2},
		{3, 4, 5},
		{1, 2, 3},
	}
	return hypergraph.MustFromEdges(labels, edges)
}

// RandomConfig controls RandomHypergraph.
type RandomConfig struct {
	NumVertices int
	NumEdges    int
	NumLabels   int
	MaxArity    int // arities drawn uniformly from [2, MaxArity]
}

// RandomHypergraph generates a small random labelled hypergraph for
// cross-check tests. Determinism is guaranteed by the seed. Duplicate edges
// produced by chance are removed by the builder, so the result may have
// fewer than cfg.NumEdges hyperedges.
func RandomHypergraph(rng *rand.Rand, cfg RandomConfig) *hypergraph.Hypergraph {
	if cfg.NumLabels < 1 {
		cfg.NumLabels = 1
	}
	if cfg.MaxArity < 2 {
		cfg.MaxArity = 2
	}
	b := hypergraph.NewBuilder()
	for i := 0; i < cfg.NumVertices; i++ {
		b.AddVertex(uint32(rng.Intn(cfg.NumLabels)))
	}
	for i := 0; i < cfg.NumEdges; i++ {
		arity := 2 + rng.Intn(cfg.MaxArity-1)
		if arity > cfg.NumVertices {
			arity = cfg.NumVertices
		}
		vs := make([]uint32, 0, arity)
		for len(vs) < arity {
			vs = append(vs, uint32(rng.Intn(cfg.NumVertices)))
		}
		b.AddEdge(vs...)
	}
	return b.MustBuild()
}

// ConnectedQueryFromWalk samples a connected query hypergraph of n
// hyperedges from h via a hyperedge random walk, mirroring the paper's
// query workload (§VII-A). It returns nil if h has no edges or the walk
// cannot reach n edges. Vertices are renumbered densely; labels carry over.
func ConnectedQueryFromWalk(rng *rand.Rand, h *hypergraph.Hypergraph, n int) *hypergraph.Hypergraph {
	if h.NumEdges() == 0 || n < 1 {
		return nil
	}
	start := hypergraph.EdgeID(rng.Intn(h.NumEdges()))
	chosen := map[hypergraph.EdgeID]bool{start: true}
	frontier := []hypergraph.EdgeID{start}
	for len(chosen) < n && len(frontier) > 0 {
		// Gather candidate adjacent edges of a random frontier edge.
		e := frontier[rng.Intn(len(frontier))]
		adj := h.AdjacentEdges(e)
		var fresh []hypergraph.EdgeID
		for _, a := range adj {
			if !chosen[a] {
				fresh = append(fresh, a)
			}
		}
		if len(fresh) == 0 {
			// Remove exhausted edge from frontier.
			nf := frontier[:0]
			for _, f := range frontier {
				if f != e {
					nf = append(nf, f)
				}
			}
			frontier = nf
			continue
		}
		next := fresh[rng.Intn(len(fresh))]
		chosen[next] = true
		frontier = append(frontier, next)
	}
	if len(chosen) < n {
		return nil
	}
	// Renumber vertices densely.
	remap := make(map[uint32]uint32)
	b := hypergraph.NewBuilder()
	for e := range chosen {
		for _, v := range h.Edge(e) {
			if _, ok := remap[v]; !ok {
				remap[v] = b.AddVertex(h.Label(v))
			}
		}
	}
	for e := range chosen {
		vs := make([]uint32, 0, h.Arity(e))
		for _, v := range h.Edge(e) {
			vs = append(vs, remap[v])
		}
		b.AddEdge(vs...)
	}
	return b.MustBuild()
}
