package hgtest

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path"
	"sort"
	"sync"

	"hgmatch/internal/hgio"
)

// FaultFS is an in-memory hgio.WALFS for crash-recovery testing: it tracks
// per-file fsync watermarks, can stop the world after an arbitrary number
// of mutating operations (simulating a process kill at that instant), can
// fail individual fsyncs, and can produce a "what the disk would hold"
// image after the crash — the fsynced prefix of every file plus a
// randomly torn, possibly bit-garbled prefix of its unsynced suffix.
//
// Durability model: file DATA is durable only up to the last Sync (or
// Truncate, which clamps the watermark); bytes past the watermark may be
// partially persisted, in order, with garbage at the torn edge — the
// standard single-file prefix model of crash-consistency harnesses.
// DIRECTORY operations (create, rename, remove) are modeled as immediately
// durable: the WAL already brackets them with SyncDir calls, and modeling
// dir-entry loss would test the model, not the recovery code.
//
// Mutating operations (writes, syncs, truncates, renames, removes,
// creates, SyncDir) advance an operation counter; CrashAfter arms a kill
// point against it. Reads don't count, but fail too once crashed — a dead
// process performs no I/O of any kind.

// ErrCrashed is returned by every FaultFS operation after the armed crash
// point has been reached.
var ErrCrashed = errors.New("hgtest: simulated crash")

// ErrInjectedSyncFailure is returned by a Sync selected via FailSync.
var ErrInjectedSyncFailure = errors.New("hgtest: injected fsync failure")

type memFile struct {
	data   []byte
	synced int // durable watermark: data[:synced] survives any crash
}

// FaultFS implements hgio.WALFS in memory with fault injection.
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	ops     int64
	crashAt int64 // -1 = disarmed; ops beyond this fail with ErrCrashed
	failAt  int64 // fail the Nth Sync/SyncDir call; 0 = disabled
	syncs   int64
}

// NewFaultFS returns an empty fault-injection filesystem.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: make(map[string]*memFile), dirs: make(map[string]bool), crashAt: -1}
}

// CrashAfter arms the kill point: the first n mutating operations succeed,
// then every operation fails with ErrCrashed. CrashAfter(0) crashes
// immediately; a negative n disarms.
func (fs *FaultFS) CrashAfter(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n < 0 {
		fs.crashAt = -1
		return
	}
	fs.crashAt = fs.ops + n
}

// Ops returns the number of mutating operations performed so far.
func (fs *FaultFS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// FailSync makes the nth (1-based, counted from now) Sync or SyncDir call
// return ErrInjectedSyncFailure. Only that one call fails.
func (fs *FaultFS) FailSync(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failAt = fs.syncs + n
}

func (fs *FaultFS) crashedLocked() bool {
	return fs.crashAt >= 0 && fs.ops >= fs.crashAt
}

// mutateLocked gates one mutating operation on the crash latch.
func (fs *FaultFS) mutateLocked() error {
	if fs.crashedLocked() {
		return ErrCrashed
	}
	fs.ops++
	return nil
}

// CrashImage returns the filesystem a restarted process would find after a
// kill: every file keeps its fsynced prefix plus a random-length torn
// prefix of its unsynced suffix; when anything was torn, the final few
// torn bytes may be XOR-garbled (a partially written sector). The image's
// files are fully "durable" (they are what's on disk) and no crash is
// armed.
func (fs *FaultFS) CrashImage(rng *rand.Rand) *FaultFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := NewFaultFS()
	for d := range fs.dirs {
		img.dirs[d] = true
	}
	for name, f := range fs.files {
		keep := f.synced
		if torn := len(f.data) - f.synced; torn > 0 {
			keep += rng.Intn(torn + 1)
		}
		data := append([]byte(nil), f.data[:keep]...)
		if keep > f.synced && rng.Intn(2) == 0 {
			for i, g := 0, 1+rng.Intn(4); i < g && keep-1-i >= f.synced; i++ {
				data[keep-1-i] ^= byte(1 + rng.Intn(255))
			}
		}
		img.files[name] = &memFile{data: data, synced: len(data)}
	}
	return img
}

// Clone returns an exact, fully durable copy (no crash armed).
func (fs *FaultFS) Clone() *FaultFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := NewFaultFS()
	for d := range fs.dirs {
		img.dirs[d] = true
	}
	for name, f := range fs.files {
		img.files[name] = &memFile{data: append([]byte(nil), f.data...), synced: len(f.data)}
	}
	return img
}

// Corrupt XORs the byte at off in the named file, simulating at-rest bit
// rot (the durable watermark is unchanged).
func (fs *FaultFS) Corrupt(name string, off int64, xor byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("hgtest: corrupt %s: %w", name, os.ErrNotExist)
	}
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("hgtest: corrupt %s: offset %d out of range [0,%d)", name, off, len(f.data))
	}
	f.data[off] ^= xor
	return nil
}

// FileNames returns the paths of all files, sorted.
func (fs *FaultFS) FileNames() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FileSize returns the named file's size, or -1 if absent.
func (fs *FaultFS) FileSize(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return int64(len(f.data))
	}
	return -1
}

// ReadFileData returns a copy of the named file's current bytes.
func (fs *FaultFS) ReadFileData(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), f.data...), nil
}

// faultFile is an open handle: a position over the shared memFile.
type faultFile struct {
	fs   *FaultFS
	name string
	f    *memFile
	pos  int64
	ro   bool
}

// OpenFile implements hgio.WALFS.
func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (hgio.WALFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashedLocked() {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, fmt.Errorf("open %s: %w", name, os.ErrNotExist)
		}
		if err := fs.mutateLocked(); err != nil {
			return nil, err
		}
		f = &memFile{}
		fs.files[name] = f
	} else if flag&os.O_TRUNC != 0 {
		if err := fs.mutateLocked(); err != nil {
			return nil, err
		}
		f.data = f.data[:0]
		f.synced = 0
	}
	return &faultFile{fs: fs, name: name, f: f, ro: flag&(os.O_WRONLY|os.O_RDWR) == 0}, nil
}

// Rename implements hgio.WALFS; atomic, immediately durable.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.mutateLocked(); err != nil {
		return err
	}
	f, ok := fs.files[oldpath]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldpath, os.ErrNotExist)
	}
	fs.files[newpath] = f
	delete(fs.files, oldpath)
	return nil
}

// Remove implements hgio.WALFS; immediately durable.
func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.mutateLocked(); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, os.ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// MkdirAll implements hgio.WALFS.
func (fs *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.mutateLocked(); err != nil {
		return err
	}
	fs.dirs[path.Clean(dir)] = true
	return nil
}

// ReadDir implements hgio.WALFS.
func (fs *FaultFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashedLocked() {
		return nil, ErrCrashed
	}
	dir = path.Clean(dir)
	var names []string
	for p := range fs.files {
		if path.Dir(p) == dir {
			names = append(names, path.Base(p))
		}
	}
	if names == nil && !fs.dirs[dir] {
		return nil, fmt.Errorf("readdir %s: %w", dir, os.ErrNotExist)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements hgio.WALFS. Directory mutations are already durable
// in this model, but the call still counts as a mutating op (it is one on
// a real disk) and honours injected sync failures.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.mutateLocked(); err != nil {
		return err
	}
	fs.syncs++
	if fs.failAt != 0 && fs.syncs == fs.failAt {
		return ErrInjectedSyncFailure
	}
	return nil
}

func (ff *faultFile) Read(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.crashedLocked() {
		return 0, ErrCrashed
	}
	if ff.pos >= int64(len(ff.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, ff.f.data[ff.pos:])
	ff.pos += int64(n)
	return n, nil
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.ro {
		return 0, fmt.Errorf("write %s: read-only handle", ff.name)
	}
	if err := ff.fs.mutateLocked(); err != nil {
		return 0, err
	}
	end := ff.pos + int64(len(p))
	if end > int64(len(ff.f.data)) {
		ff.f.data = append(ff.f.data, make([]byte, end-int64(len(ff.f.data)))...)
	}
	copy(ff.f.data[ff.pos:end], p)
	if int(ff.pos) < ff.f.synced {
		// Overwriting durable bytes dirties them again.
		ff.f.synced = int(ff.pos)
	}
	ff.pos = end
	return len(p), nil
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.mutateLocked(); err != nil {
		return err
	}
	ff.fs.syncs++
	if ff.fs.failAt != 0 && ff.fs.syncs == ff.fs.failAt {
		return ErrInjectedSyncFailure
	}
	ff.f.synced = len(ff.f.data)
	return nil
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.mutateLocked(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(ff.f.data)) {
		return fmt.Errorf("truncate %s: size %d out of range", ff.name, size)
	}
	ff.f.data = ff.f.data[:size]
	if ff.f.synced > int(size) {
		ff.f.synced = int(size)
	}
	if ff.pos > size {
		ff.pos = size
	}
	return nil
}

func (ff *faultFile) Size() (int64, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.crashedLocked() {
		return 0, ErrCrashed
	}
	return int64(len(ff.f.data)), nil
}

func (ff *faultFile) Close() error { return nil }

var _ hgio.WALFS = (*FaultFS)(nil)
