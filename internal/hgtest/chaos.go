// Chaos-testing harness for the serving path: deterministic panic
// injection at the engine's instrumented fault points, fault-point
// counting to randomize injection sites, and raw-connection HTTP clients
// that stall or disconnect mid-stream. Engine, shard and server batteries
// compose these to assert the fault-containment contract (process
// survives, pool drains, zero leaked blocks, concurrent requests
// untouched); see docs/OPERATIONS.md.
package hgtest

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// PanicInjector is an engine FaultHook that panics on its Target'th
// eligible invocation. With Point set, only hook calls for that point
// label count ("task", "expand", "sink", "gather"); otherwise every call
// counts, so Target indexes the run's global fault-point sequence.
//
// A single run's hook invocation order is deterministic only for one
// worker; under concurrency Target selects "some" interleaving-dependent
// point, which is exactly what a randomized battery wants. The injector
// is safe for concurrent use and fires at most once.
type PanicInjector struct {
	Target int64  // 1-based index of the eligible call to panic on
	Point  string // restrict to one point label; "" = any

	calls atomic.Int64
	fired atomic.Bool
}

// Hook is the engine.Options.FaultHook callback.
func (pi *PanicInjector) Hook(point string) {
	if pi.Point != "" && point != pi.Point {
		return
	}
	if pi.calls.Add(1) == pi.Target && pi.fired.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("hgtest: injected fault at %q (call %d)", point, pi.Target))
	}
}

// Fired reports whether the injector reached its target and panicked.
// A battery uses it to tell "fault exercised" from "run ended before the
// target point was hit" (both are legal outcomes of a randomized target).
func (pi *PanicInjector) Fired() bool { return pi.fired.Load() }

// Calls returns how many eligible fault points the run passed through.
func (pi *PanicInjector) Calls() int64 { return pi.calls.Load() }

// FaultCounter is a FaultHook that only counts. A battery first runs the
// workload once under a FaultCounter to learn how many fault points the
// run crosses per label, then draws PanicInjector targets from that range.
type FaultCounter struct {
	total atomic.Int64

	mu     sync.Mutex
	points map[string]int64
}

// Hook is the engine.Options.FaultHook callback.
func (fc *FaultCounter) Hook(point string) {
	fc.total.Add(1)
	fc.mu.Lock()
	if fc.points == nil {
		fc.points = make(map[string]int64)
	}
	fc.points[point]++
	fc.mu.Unlock()
}

// Total returns the number of fault points crossed so far.
func (fc *FaultCounter) Total() int64 { return fc.total.Load() }

// Count returns how many times the given point label was crossed.
func (fc *FaultCounter) Count(point string) int64 {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.points[point]
}

// DialRequest opens a raw TCP connection to addr (host:port) and writes a
// minimal HTTP/1.1 request with a JSON body, returning the open
// connection without reading the response. The caller drives the read
// side: never reading simulates a stalled (slow) client once the kernel
// socket buffers fill, reading a little then closing simulates a
// mid-stream disconnect, and closing only the read half leaves a
// half-closed connection. The caller owns conn.Close.
func DialRequest(addr, method, path, body string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	req := fmt.Sprintf("%s %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		method, path, addr, len(body), body)
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
