package hgtest_test

import (
	"math/rand"
	"testing"

	"hgmatch/internal/hgtest"
)

func TestFixturesAreValid(t *testing.T) {
	for name, h := range map[string]interface{ Validate() error }{
		"Fig1Data":             hgtest.Fig1Data(),
		"Fig1Query":            hgtest.Fig1Query(),
		"Fig4PartialQuery":     hgtest.Fig4PartialQuery(),
		"Fig4PartialEmbedding": hgtest.Fig4PartialEmbedding(),
	} {
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRandomHypergraphDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := hgtest.RandomHypergraph(rng, hgtest.RandomConfig{
		NumVertices: 10, NumEdges: 10, // zero labels/arity: defaults kick in
	})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
}

func TestConnectedQueryFromWalkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := hgtest.Fig1Data()
	if q := hgtest.ConnectedQueryFromWalk(rng, h, 0); q != nil {
		t.Error("n=0 should yield nil")
	}
	if q := hgtest.ConnectedQueryFromWalk(rng, h, 100); q != nil {
		t.Error("oversized walk should yield nil")
	}
	q := hgtest.ConnectedQueryFromWalk(rng, h, 2)
	if q == nil || q.NumEdges() != 2 {
		t.Fatalf("walk query = %v", q)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}
