package dataflow_test

import (
	"strings"
	"testing"

	"hgmatch/internal/core"
	"hgmatch/internal/dataflow"
	"hgmatch/internal/hgtest"
	"hgmatch/internal/hypergraph"
)

func fig1Graph(t *testing.T) *dataflow.Graph {
	t.Helper()
	p, err := core.NewPlan(hgtest.Fig1Query(), hgtest.Fig1Data())
	if err != nil {
		t.Fatal(err)
	}
	return dataflow.FromPlan(p)
}

func TestFromPlanShape(t *testing.T) {
	g := fig1Graph(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := []dataflow.OpKind{dataflow.OpScan, dataflow.OpExpand, dataflow.OpExpand, dataflow.OpSink}
	if len(g.Ops) != len(kinds) {
		t.Fatalf("ops = %d, want %d", len(g.Ops), len(kinds))
	}
	for i, k := range kinds {
		if g.Ops[i].Kind != k {
			t.Errorf("op %d = %v, want %v", i, g.Ops[i].Kind, k)
		}
	}
}

// TestExplainMatchesFig5a checks the rendering against the paper's Fig. 5a
// dataflow graph: SCAN({u2,u4}) -> EXPAND({u0,u1,u2}) ->
// EXPAND({u0,u1,u3,u4}) -> SINK.
func TestExplainMatchesFig5a(t *testing.T) {
	g := fig1Graph(t)
	got := g.Explain()
	want := "SCAN({u2,u4}) -> EXPAND({u0,u1,u2}) -> EXPAND({u0,u1,u3,u4}) -> SINK"
	if got != want {
		t.Errorf("Explain:\n got %q\nwant %q", got, want)
	}
}

func TestFiltersCompose(t *testing.T) {
	g := fig1Graph(t)
	g.WithFilter(func(m []hypergraph.EdgeID) bool { return m[0] == 0 })
	g.WithFilter(func(m []hypergraph.EdgeID) bool { return len(m) == 3 })
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	pred := g.Filters()
	if pred == nil {
		t.Fatal("no composed filter")
	}
	if !pred([]hypergraph.EdgeID{0, 2, 4}) {
		t.Error("composed filter rejected passing tuple")
	}
	if pred([]hypergraph.EdgeID{1, 3, 5}) {
		t.Error("composed filter accepted failing tuple")
	}
	if !strings.Contains(g.Explain(), "FILTER -> FILTER -> SINK") {
		t.Errorf("Explain = %q", g.Explain())
	}
}

func TestAggregateReplace(t *testing.T) {
	g := fig1Graph(t)
	g.WithAggregate(func(m []hypergraph.EdgeID) string { return "a" })
	g.WithAggregate(func(m []hypergraph.EdgeID) string { return "b" })
	n := 0
	for _, op := range g.Ops {
		if op.Kind == dataflow.OpAggregate {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d aggregate ops, want 1", n)
	}
	if g.Aggregate()(nil) != "b" {
		t.Error("aggregate not replaced")
	}
}

func TestNilAccessors(t *testing.T) {
	g := fig1Graph(t)
	if g.Filters() != nil {
		t.Error("Filters should be nil without FILTER ops")
	}
	if g.Aggregate() != nil {
		t.Error("Aggregate should be nil without AGGREGATE op")
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	g := fig1Graph(t)
	// Swap SCAN and SINK.
	bad := &dataflow.Graph{Plan: g.Plan, Ops: []dataflow.Operator{g.Ops[len(g.Ops)-1], g.Ops[0]}}
	if err := bad.Validate(); err == nil {
		t.Error("reversed graph validated")
	}
	// Missing EXPAND.
	bad2 := &dataflow.Graph{Plan: g.Plan, Ops: []dataflow.Operator{g.Ops[0], g.Ops[len(g.Ops)-1]}}
	if err := bad2.Validate(); err == nil {
		t.Error("truncated graph validated")
	}
	// Depth out of order.
	ops := append([]dataflow.Operator(nil), g.Ops...)
	ops[1], ops[2] = ops[2], ops[1]
	bad3 := &dataflow.Graph{Plan: g.Plan, Ops: ops}
	if err := bad3.Validate(); err == nil {
		t.Error("depth-scrambled graph validated")
	}
}

func TestOpKindString(t *testing.T) {
	names := map[dataflow.OpKind]string{
		dataflow.OpScan:      "SCAN",
		dataflow.OpExpand:    "EXPAND",
		dataflow.OpFilter:    "FILTER",
		dataflow.OpAggregate: "AGGREGATE",
		dataflow.OpSink:      "SINK",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if dataflow.OpKind(99).String() != "OP(99)" {
		t.Error("unknown kind formatting")
	}
}
