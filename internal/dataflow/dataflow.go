// Package dataflow models HGMatch's execution plans as dataflow graphs
// (paper §VI-A): a directed path of operators SCAN → EXPAND* → SINK, where
// SCAN emits the matches of the first query hyperedge, each EXPAND extends
// partial embeddings by one hyperedge, and SINK consumes results by
// counting or collecting.
//
// The paper notes the dataflow design "makes it highly customizable and
// allows it to be easily extended with other functionalities of hypergraph
// databases ... by introducing new dataflow operators. Examples include
// adding extra aggregation and property filtering." This package implements
// those two extension operators (FILTER and AGGREGATE); the engine applies
// them at materialisation points.
package dataflow

import (
	"fmt"
	"strings"

	"hgmatch/internal/core"
	"hgmatch/internal/hypergraph"
)

// OpKind enumerates dataflow operator kinds.
type OpKind int

const (
	// OpScan is the first operator: SCAN(e_q) iterates one hyperedge
	// partition and outputs all data hyperedges with signature S(e_q).
	OpScan OpKind = iota
	// OpExpand extends each input partial embedding by one matched
	// hyperedge (candidate generation + validation).
	OpExpand
	// OpFilter drops embeddings failing a predicate (extension operator).
	OpFilter
	// OpAggregate groups embeddings by a key function and counts per
	// group (extension operator).
	OpAggregate
	// OpSink consumes the results (count or collect).
	OpSink
)

func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "SCAN"
	case OpExpand:
		return "EXPAND"
	case OpFilter:
		return "FILTER"
	case OpAggregate:
		return "AGGREGATE"
	case OpSink:
		return "SINK"
	default:
		return fmt.Sprintf("OP(%d)", int(k))
	}
}

// Predicate decides whether a complete embedding (edge tuple aligned with
// the plan's matching order) passes a FILTER operator. Implementations must
// be safe for concurrent calls and must not retain m.
type Predicate func(m []hypergraph.EdgeID) bool

// KeyFunc maps an embedding to an aggregation key for AGGREGATE.
// Implementations must be safe for concurrent calls and must not retain m.
type KeyFunc func(m []hypergraph.EdgeID) string

// Operator is one vertex of the dataflow graph.
type Operator struct {
	Kind  OpKind
	Depth int // EXPAND: matching-order position (1-based prefix length it produces)

	// QueryEdge is the query hyperedge this SCAN/EXPAND matches.
	QueryEdge hypergraph.EdgeID

	Pred Predicate // FILTER only
	Key  KeyFunc   // AGGREGATE only
}

// Graph is a compiled dataflow graph: a directed path of operators over a
// core.Plan. Operators beyond SCAN/EXPAND/SINK are optional extensions.
type Graph struct {
	Plan *core.Plan
	Ops  []Operator
}

// FromPlan builds the canonical HGMatch dataflow graph for a plan:
// SCAN(ϕ[0]) → EXPAND(ϕ[1]) → ... → EXPAND(ϕ[n-1]) → SINK (paper Fig. 5a).
func FromPlan(p *core.Plan) *Graph {
	g := &Graph{Plan: p}
	g.Ops = append(g.Ops, Operator{Kind: OpScan, QueryEdge: p.Order[0]})
	for i := 1; i < p.NumSteps(); i++ {
		g.Ops = append(g.Ops, Operator{Kind: OpExpand, Depth: i, QueryEdge: p.Order[i]})
	}
	g.Ops = append(g.Ops, Operator{Kind: OpSink})
	return g
}

// WithFilter inserts a FILTER operator immediately before the SINK. Filters
// compose: all inserted predicates must pass.
func (g *Graph) WithFilter(pred Predicate) *Graph {
	g.insertBeforeSink(Operator{Kind: OpFilter, Pred: pred})
	return g
}

// WithAggregate inserts an AGGREGATE operator immediately before the SINK.
// At most one aggregate is supported; later calls replace earlier ones.
func (g *Graph) WithAggregate(key KeyFunc) *Graph {
	for i := range g.Ops {
		if g.Ops[i].Kind == OpAggregate {
			g.Ops[i].Key = key
			return g
		}
	}
	g.insertBeforeSink(Operator{Kind: OpAggregate, Key: key})
	return g
}

func (g *Graph) insertBeforeSink(op Operator) {
	n := len(g.Ops)
	g.Ops = append(g.Ops, Operator{})
	copy(g.Ops[n:], g.Ops[n-1:])
	g.Ops[n-1] = op
}

// Filters returns the composed predicate of all FILTER operators, or nil.
func (g *Graph) Filters() Predicate {
	var preds []Predicate
	for _, op := range g.Ops {
		if op.Kind == OpFilter && op.Pred != nil {
			preds = append(preds, op.Pred)
		}
	}
	switch len(preds) {
	case 0:
		return nil
	case 1:
		return preds[0]
	}
	return func(m []hypergraph.EdgeID) bool {
		for _, p := range preds {
			if !p(m) {
				return false
			}
		}
		return true
	}
}

// Aggregate returns the AGGREGATE key function, or nil when absent.
func (g *Graph) Aggregate() KeyFunc {
	for _, op := range g.Ops {
		if op.Kind == OpAggregate {
			return op.Key
		}
	}
	return nil
}

// Explain renders the dataflow graph like the paper's Fig. 5a, e.g.
//
//	SCAN({u2,u4}) -> EXPAND({u0,u1,u2}) -> EXPAND({u0,u1,u3,u4}) -> SINK
func (g *Graph) Explain() string {
	var parts []string
	for _, op := range g.Ops {
		switch op.Kind {
		case OpScan, OpExpand:
			parts = append(parts, fmt.Sprintf("%s(%s)", op.Kind, formatQueryEdge(g.Plan.Query, op.QueryEdge)))
		default:
			parts = append(parts, op.Kind.String())
		}
	}
	return strings.Join(parts, " -> ")
}

func formatQueryEdge(q *hypergraph.Hypergraph, e hypergraph.EdgeID) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range q.Edge(e) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "u%d", v)
	}
	b.WriteByte('}')
	return b.String()
}

// Validate checks structural sanity: exactly one SCAN first, one SINK last,
// EXPAND depths contiguous.
func (g *Graph) Validate() error {
	if len(g.Ops) < 2 {
		return fmt.Errorf("dataflow: graph needs at least SCAN and SINK")
	}
	if g.Ops[0].Kind != OpScan {
		return fmt.Errorf("dataflow: first operator must be SCAN, got %v", g.Ops[0].Kind)
	}
	if g.Ops[len(g.Ops)-1].Kind != OpSink {
		return fmt.Errorf("dataflow: last operator must be SINK, got %v", g.Ops[len(g.Ops)-1].Kind)
	}
	wantDepth := 1
	for _, op := range g.Ops[1 : len(g.Ops)-1] {
		switch op.Kind {
		case OpExpand:
			if op.Depth != wantDepth {
				return fmt.Errorf("dataflow: EXPAND depth %d out of order (want %d)", op.Depth, wantDepth)
			}
			wantDepth++
		case OpFilter, OpAggregate:
			// allowed anywhere after expansions in this release
		default:
			return fmt.Errorf("dataflow: unexpected interior operator %v", op.Kind)
		}
	}
	if wantDepth != g.Plan.NumSteps() {
		return fmt.Errorf("dataflow: %d EXPANDs for %d-step plan", wantDepth-1, g.Plan.NumSteps()-1)
	}
	return nil
}
