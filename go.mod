module hgmatch

go 1.24
